//! Structured I/O tracing and access-pattern analytics.
//!
//! Every claim in the source paper is a claim about *I/O counts and their
//! structure*: which phase of a multi-selection pays which fraction of the
//! `O(n lg K)` budget, how the recursion tree distributes its I/Os, whether
//! scans are actually sequential. The aggregate [`crate::Counters`] answer
//! none of those questions; this module does, with three pieces:
//!
//! * **Span events** — every [`crate::IoStats`] phase becomes a span
//!   carrying a monotonic wall-clock duration and the exact
//!   [`crate::Counters`] delta it charged, with parent ids so nested phases
//!   (including recursion levels) form a real tree. Point events mark
//!   faults injected, retried device attempts, journal commits, and
//!   work-unit redo on crash resume, each attributed to the innermost open
//!   span.
//! * **Per-file access analytics** — each block transfer is classified as
//!   sequential or random against the file's previous access, seek
//!   distances are accumulated, and a 16-bucket read/write heatmap over the
//!   block space is maintained (buckets fold as the file grows, HDR-style).
//!   A live/peak *disk-blocks-in-use* gauge tracks the space bound
//!   empirically.
//! * **Sinks** — a [`TraceSink`] receives every [`TraceEvent`]. The
//!   [`RingSink`] keeps a bounded in-memory window; the [`JsonlSink`]
//!   streams events as JSON lines (hand-rolled escaping, zero
//!   dependencies). Tracing is off by default: when no sink is installed
//!   every hook is a single atomic flag load.
//!
//! Trace output is host-side observability, **never** part of the EM cost
//! model: emitting an event charges no I/O and consults no fault plan.
//!
//! ```
//! use emcore::{EmConfig, EmContext, EmFile, RingSink, TraceEvent};
//!
//! let ctx = EmContext::new_in_memory(EmConfig::tiny());
//! let ring = RingSink::new(1024);
//! ctx.set_trace_sink(Box::new(ring.clone()));
//! ctx.stats().phase("demo", || {
//!     let f = EmFile::from_slice(&ctx, &[1u64, 2, 3]).unwrap();
//!     f.to_vec().unwrap();
//! });
//! ctx.finish_trace();
//! assert!(ring
//!     .events()
//!     .iter()
//!     .any(|e| matches!(e, TraceEvent::SpanOpen { name, .. } if name == "demo")));
//! ```

use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;
use std::time::Instant;

use crate::fault::{FaultKind, IoOp};
use crate::stats::Counters;

/// Number of heatmap buckets per file and direction.
pub const HEAT_BUCKETS: usize = 16;

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A discrete point event, attributed to the innermost open span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PointKind {
    /// A device attempt failed and was retried under the context's
    /// [`crate::RetryPolicy`].
    Retry {
        /// Direction of the retried transfer.
        op: IoOp,
    },
    /// The fault plan injected a fault into a device attempt.
    Fault {
        /// What was injected.
        kind: FaultKind,
        /// Direction of the faulted transfer.
        op: IoOp,
        /// Id of the [`crate::EmFile`] the attempt targeted.
        file: u64,
    },
    /// A checkpoint journal committed durably.
    JournalCommit {
        /// The journal's name.
        name: String,
    },
    /// A resumed run re-executed a crash-interrupted work unit.
    WorkUnitRedo {
        /// Block I/Os spent on the redo (also counted in the enclosing
        /// span's reads/writes; see [`crate::Counters::redone_ios`]).
        ios: u64,
    },
    /// A memory-governor event: the dynamic budget was re-pointed
    /// (`squeeze`/`restore`), a lease was taken or released, or an
    /// admission was denied.
    Governor {
        /// What happened: `squeeze`, `restore`, `lease`, `release`,
        /// `deny`.
        event: String,
        /// The budget or lease size involved, in words.
        words: u64,
    },
}

/// One trace record. Serialises to a single JSON line (see
/// [`TraceEvent::to_json`]) and back ([`TraceEvent::parse`]).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Trace start: machine geometry, timestamp origin.
    Begin {
        /// Microseconds since the trace epoch (always 0 in practice).
        t_us: u64,
        /// Memory capacity `M` in records.
        mem: u64,
        /// Block size `B` in records.
        block: u64,
    },
    /// A span (named phase) opened.
    SpanOpen {
        /// Span id, unique within the trace, starting at 1.
        id: u64,
        /// Id of the enclosing span; 0 for a root span.
        parent: u64,
        /// The phase name.
        name: String,
        /// Microseconds since the trace epoch.
        t_us: u64,
    },
    /// A span closed; carries its duration and counter delta.
    SpanClose {
        /// The id given at [`TraceEvent::SpanOpen`].
        id: u64,
        /// Microseconds since the trace epoch.
        t_us: u64,
        /// Monotonic wall-clock duration of the span, microseconds.
        dur_us: u64,
        /// Counters charged while the span was open (inclusive of
        /// children).
        delta: Counters,
    },
    /// A point event (fault, retry, journal commit, work-unit redo).
    Point {
        /// What happened.
        kind: PointKind,
        /// Innermost open span at the time; 0 when none.
        span: u64,
        /// Microseconds since the trace epoch.
        t_us: u64,
    },
    /// Per-file access-pattern summary, emitted at trace finish.
    FileSummary {
        /// The file's id within its context.
        file: u64,
        /// Aggregated access statistics (boxed: this variant is much
        /// larger than the rest of the enum).
        access: Box<FileAccess>,
    },
    /// Trace end: final disk-space gauge.
    End {
        /// Microseconds since the trace epoch.
        t_us: u64,
        /// Blocks in use on the backing store at finish.
        live_blocks: u64,
        /// Peak blocks in use over the trace.
        peak_blocks: u64,
    },
}

/// Aggregated access-pattern statistics for one [`crate::EmFile`].
///
/// A transfer is *sequential* when it targets the block after the file's
/// previously accessed block in the same direction (or re-reads the same
/// block); anything else is *random* and contributes its seek distance
/// `|block − (prev + 1)|`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FileAccess {
    /// Block reads.
    pub reads: u64,
    /// Block writes.
    pub writes: u64,
    /// Sequential block reads (first access counts as sequential).
    pub seq_reads: u64,
    /// Random block reads.
    pub rand_reads: u64,
    /// Sequential block writes.
    pub seq_writes: u64,
    /// Random block writes.
    pub rand_writes: u64,
    /// Random transfers that contributed a seek distance.
    pub seeks: u64,
    /// Sum of all seek distances (mean = `sum_seek / seeks`).
    pub sum_seek: u64,
    /// Largest single seek distance.
    pub max_seek: u64,
    /// Blocks per heatmap bucket (power of two; doubles as the file grows).
    pub heat_scale: u64,
    /// Read counts per block-space bucket.
    pub read_heat: [u64; HEAT_BUCKETS],
    /// Write counts per block-space bucket.
    pub write_heat: [u64; HEAT_BUCKETS],
}

impl FileAccess {
    /// Fraction of transfers classified sequential, in `[0, 1]`; 1 for an
    /// untouched file.
    pub fn sequential_fraction(&self) -> f64 {
        let total = self.reads + self.writes;
        if total == 0 {
            return 1.0;
        }
        (self.seq_reads + self.seq_writes) as f64 / total as f64
    }

    /// Mean seek distance over random transfers (0 when fully sequential).
    pub fn mean_seek(&self) -> f64 {
        if self.seeks == 0 {
            0.0
        } else {
            self.sum_seek as f64 / self.seeks as f64
        }
    }

    /// Grow `heat_scale` (folding buckets) until `block` maps into range.
    fn ensure_scale(&mut self, block: u64) {
        if self.heat_scale == 0 {
            self.heat_scale = 1;
        }
        while block / self.heat_scale >= HEAT_BUCKETS as u64 {
            for i in 0..HEAT_BUCKETS / 2 {
                self.read_heat[i] = self.read_heat[2 * i] + self.read_heat[2 * i + 1];
                self.write_heat[i] = self.write_heat[2 * i] + self.write_heat[2 * i + 1];
            }
            for i in HEAT_BUCKETS / 2..HEAT_BUCKETS {
                self.read_heat[i] = 0;
                self.write_heat[i] = 0;
            }
            self.heat_scale *= 2;
        }
    }

    /// Record one transfer of `op` at `block`, classified against the
    /// previous block accessed in the same direction.
    fn note(&mut self, op: IoOp, block: u64, prev: Option<u64>) {
        self.ensure_scale(block);
        let bucket = (block / self.heat_scale) as usize;
        let sequential = match prev {
            None => true,
            Some(p) => block == p + 1 || block == p,
        };
        if !sequential {
            let p = prev.expect("non-sequential implies a previous access");
            let dist = block.abs_diff(p + 1);
            self.seeks += 1;
            self.sum_seek = self.sum_seek.saturating_add(dist);
            self.max_seek = self.max_seek.max(dist);
        }
        match (op, sequential) {
            (IoOp::Read, true) => {
                self.reads += 1;
                self.seq_reads += 1;
                self.read_heat[bucket] += 1;
            }
            (IoOp::Read, false) => {
                self.reads += 1;
                self.rand_reads += 1;
                self.read_heat[bucket] += 1;
            }
            (IoOp::Write, true) => {
                self.writes += 1;
                self.seq_writes += 1;
                self.write_heat[bucket] += 1;
            }
            (IoOp::Write, false) => {
                self.writes += 1;
                self.rand_writes += 1;
                self.write_heat[bucket] += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// JSON encoding (hand-rolled; the workspace is dependency-free)
// ---------------------------------------------------------------------------

/// Append `s` to `out` with JSON string escaping (quotes, backslashes and
/// control characters; non-ASCII passes through as UTF-8).
pub fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Incremental builder for the flat JSON objects the trace and metrics
/// codecs emit (shared crate-internally; see [`crate::metrics`]).
pub(crate) struct JsonObj {
    buf: String,
}

impl JsonObj {
    pub(crate) fn new(event: &str) -> Self {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"e\":\"");
        buf.push_str(event);
        buf.push('"');
        Self { buf }
    }

    pub(crate) fn num(&mut self, key: &str, v: u64) -> &mut Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self.buf.push_str(&v.to_string());
        self
    }

    /// Emit the field only when non-zero (decoders default missing to 0).
    fn num_nz(&mut self, key: &str, v: u64) -> &mut Self {
        if v != 0 {
            self.num(key, v);
        }
        self
    }

    pub(crate) fn str_(&mut self, key: &str, v: &str) -> &mut Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":\"");
        escape_json(v, &mut self.buf);
        self.buf.push('"');
        self
    }

    pub(crate) fn arr(&mut self, key: &str, vals: &[u64]) -> &mut Self {
        self.buf.push_str(",\"");
        self.buf.push_str(key);
        self.buf.push_str("\":[");
        for (i, v) in vals.iter().enumerate() {
            if i > 0 {
                self.buf.push(',');
            }
            self.buf.push_str(&v.to_string());
        }
        self.buf.push(']');
        self
    }

    pub(crate) fn finish(&mut self) -> String {
        self.buf.push('}');
        std::mem::take(&mut self.buf)
    }
}

fn counters_fields(o: &mut JsonObj, c: &Counters) {
    o.num_nz("reads", c.reads)
        .num_nz("writes", c.writes)
        .num_nz("comparisons", c.comparisons)
        .num_nz("bytes_read", c.bytes_read)
        .num_nz("bytes_written", c.bytes_written)
        .num_nz("retries", c.retries)
        .num_nz("corrupt_reads", c.corrupt_reads)
        .num_nz("journal_writes", c.journal_writes)
        .num_nz("redone_ios", c.redone_ios)
        .num_nz("physical_reads", c.physical_reads)
        .num_nz("physical_writes", c.physical_writes)
        .num_nz("cache_hits", c.cache_hits)
        .num_nz("cache_misses", c.cache_misses)
        .num_nz("shed_queries", c.shed_queries)
        .num_nz("breaker_trips", c.breaker_trips)
        .num_nz("degraded_answers", c.degraded_answers)
        .num_nz("mem_denials", c.mem_denials)
        .num_nz("mem_reclaims", c.mem_reclaims);
}

impl TraceEvent {
    /// Serialise to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            TraceEvent::Begin { t_us, mem, block } => JsonObj::new("begin")
                .num("t_us", *t_us)
                .num("mem", *mem)
                .num("block", *block)
                .finish(),
            TraceEvent::SpanOpen {
                id,
                parent,
                name,
                t_us,
            } => JsonObj::new("open")
                .num("id", *id)
                .num("parent", *parent)
                .str_("name", name)
                .num("t_us", *t_us)
                .finish(),
            TraceEvent::SpanClose {
                id,
                t_us,
                dur_us,
                delta,
            } => {
                let mut o = JsonObj::new("close");
                o.num("id", *id).num("t_us", *t_us).num("dur_us", *dur_us);
                counters_fields(&mut o, delta);
                o.finish()
            }
            TraceEvent::Point { kind, span, t_us } => {
                let mut o = JsonObj::new("point");
                match kind {
                    PointKind::Retry { op } => {
                        o.str_("kind", "retry").str_("op", op.label());
                    }
                    PointKind::Fault { kind, op, file } => {
                        o.str_("kind", "fault")
                            .str_("fault", kind.label())
                            .str_("op", op.label())
                            .num("file", *file);
                    }
                    PointKind::JournalCommit { name } => {
                        o.str_("kind", "journal_commit").str_("name", name);
                    }
                    PointKind::WorkUnitRedo { ios } => {
                        o.str_("kind", "work_unit_redo").num("ios", *ios);
                    }
                    PointKind::Governor { event, words } => {
                        o.str_("kind", "governor")
                            .str_("event", event)
                            .num("words", *words);
                    }
                }
                o.num("span", *span).num("t_us", *t_us).finish()
            }
            TraceEvent::FileSummary { file, access } => {
                let a = access;
                let mut o = JsonObj::new("file");
                o.num("file", *file)
                    .num("reads", a.reads)
                    .num("writes", a.writes)
                    .num_nz("seq_reads", a.seq_reads)
                    .num_nz("rand_reads", a.rand_reads)
                    .num_nz("seq_writes", a.seq_writes)
                    .num_nz("rand_writes", a.rand_writes)
                    .num_nz("seeks", a.seeks)
                    .num_nz("sum_seek", a.sum_seek)
                    .num_nz("max_seek", a.max_seek)
                    .num("heat_scale", a.heat_scale)
                    .arr("read_heat", &a.read_heat)
                    .arr("write_heat", &a.write_heat);
                o.finish()
            }
            TraceEvent::End {
                t_us,
                live_blocks,
                peak_blocks,
            } => JsonObj::new("end")
                .num("t_us", *t_us)
                .num("live_blocks", *live_blocks)
                .num("peak_blocks", *peak_blocks)
                .finish(),
        }
    }

    /// Parse one JSON line produced by [`TraceEvent::to_json`].
    pub fn parse(line: &str) -> Result<TraceEvent, String> {
        let map = parse_object(line)?;
        let event = get_str(&map, "e")?;
        let n = |key: &str| get_num_or_zero(&map, key);
        match event.as_str() {
            "begin" => Ok(TraceEvent::Begin {
                t_us: n("t_us"),
                mem: n("mem"),
                block: n("block"),
            }),
            "open" => Ok(TraceEvent::SpanOpen {
                id: n("id"),
                parent: n("parent"),
                name: get_str(&map, "name")?,
                t_us: n("t_us"),
            }),
            "close" => Ok(TraceEvent::SpanClose {
                id: n("id"),
                t_us: n("t_us"),
                dur_us: n("dur_us"),
                delta: Counters {
                    reads: n("reads"),
                    writes: n("writes"),
                    comparisons: n("comparisons"),
                    bytes_read: n("bytes_read"),
                    bytes_written: n("bytes_written"),
                    retries: n("retries"),
                    corrupt_reads: n("corrupt_reads"),
                    journal_writes: n("journal_writes"),
                    redone_ios: n("redone_ios"),
                    physical_reads: n("physical_reads"),
                    physical_writes: n("physical_writes"),
                    cache_hits: n("cache_hits"),
                    cache_misses: n("cache_misses"),
                    shed_queries: n("shed_queries"),
                    breaker_trips: n("breaker_trips"),
                    degraded_answers: n("degraded_answers"),
                    mem_denials: n("mem_denials"),
                    mem_reclaims: n("mem_reclaims"),
                },
            }),
            "point" => {
                let kind = match get_str(&map, "kind")?.as_str() {
                    "retry" => PointKind::Retry {
                        op: parse_op(&get_str(&map, "op")?)?,
                    },
                    "fault" => PointKind::Fault {
                        kind: parse_fault(&get_str(&map, "fault")?)?,
                        op: parse_op(&get_str(&map, "op")?)?,
                        file: n("file"),
                    },
                    "journal_commit" => PointKind::JournalCommit {
                        name: get_str(&map, "name")?,
                    },
                    "work_unit_redo" => PointKind::WorkUnitRedo { ios: n("ios") },
                    "governor" => PointKind::Governor {
                        event: get_str(&map, "event")?,
                        words: n("words"),
                    },
                    other => return Err(format!("unknown point kind {other:?}")),
                };
                Ok(TraceEvent::Point {
                    kind,
                    span: n("span"),
                    t_us: n("t_us"),
                })
            }
            "file" => {
                let mut access = FileAccess {
                    reads: n("reads"),
                    writes: n("writes"),
                    seq_reads: n("seq_reads"),
                    rand_reads: n("rand_reads"),
                    seq_writes: n("seq_writes"),
                    rand_writes: n("rand_writes"),
                    seeks: n("seeks"),
                    sum_seek: n("sum_seek"),
                    max_seek: n("max_seek"),
                    heat_scale: n("heat_scale"),
                    ..FileAccess::default()
                };
                access.read_heat = get_heat(&map, "read_heat")?;
                access.write_heat = get_heat(&map, "write_heat")?;
                Ok(TraceEvent::FileSummary {
                    file: n("file"),
                    access: Box::new(access),
                })
            }
            "end" => Ok(TraceEvent::End {
                t_us: n("t_us"),
                live_blocks: n("live_blocks"),
                peak_blocks: n("peak_blocks"),
            }),
            other => Err(format!("unknown event type {other:?}")),
        }
    }
}

fn parse_op(s: &str) -> Result<IoOp, String> {
    IoOp::from_label(s).ok_or_else(|| format!("unknown op {s:?}"))
}

fn parse_fault(s: &str) -> Result<FaultKind, String> {
    FaultKind::from_label(s).ok_or_else(|| format!("unknown fault kind {s:?}"))
}

/// A parsed JSON scalar in a trace line: the format only ever uses strings,
/// unsigned integers, and arrays of unsigned integers.
pub(crate) enum JVal {
    Str(String),
    Num(u64),
    Arr(Vec<u64>),
}

pub(crate) fn get_str(map: &BTreeMap<String, JVal>, key: &str) -> Result<String, String> {
    match map.get(key) {
        Some(JVal::Str(s)) => Ok(s.clone()),
        _ => Err(format!("missing string field {key:?}")),
    }
}

pub(crate) fn get_num_or_zero(map: &BTreeMap<String, JVal>, key: &str) -> u64 {
    match map.get(key) {
        Some(JVal::Num(v)) => *v,
        _ => 0,
    }
}

fn get_heat(map: &BTreeMap<String, JVal>, key: &str) -> Result<[u64; HEAT_BUCKETS], String> {
    let mut out = [0u64; HEAT_BUCKETS];
    match map.get(key) {
        Some(JVal::Arr(v)) if v.len() == HEAT_BUCKETS => {
            out.copy_from_slice(v);
            Ok(out)
        }
        Some(JVal::Arr(v)) => Err(format!(
            "field {key:?}: {} buckets where {HEAT_BUCKETS} expected",
            v.len()
        )),
        None => Ok(out),
        _ => Err(format!("field {key:?} is not an array")),
    }
}

/// Minimal JSON parser for the flat objects this module emits.
pub(crate) fn parse_object(line: &str) -> Result<BTreeMap<String, JVal>, String> {
    let mut p = Parser {
        b: line.as_bytes(),
        i: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut map = BTreeMap::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.i += 1;
    } else {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let val = p.value()?;
            map.insert(key, val);
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err("expected ',' or '}'".into()),
            }
        }
    }
    p.skip_ws();
    if p.i != p.b.len() {
        return Err("trailing bytes after object".into());
    }
    Ok(map)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.i += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        match self.next() {
            Some(got) if got == c => Ok(()),
            got => Err(format!("expected {:?}, got {got:?}", c as char)),
        }
    }

    fn value(&mut self) -> Result<JVal, String> {
        match self.peek() {
            Some(b'"') => Ok(JVal::Str(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut arr = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.i += 1;
                    return Ok(JVal::Arr(arr));
                }
                loop {
                    self.skip_ws();
                    arr.push(self.number()?);
                    self.skip_ws();
                    match self.next() {
                        Some(b',') => continue,
                        Some(b']') => break,
                        _ => return Err("expected ',' or ']'".into()),
                    }
                }
                Ok(JVal::Arr(arr))
            }
            Some(c) if c.is_ascii_digit() => Ok(JVal::Num(self.number()?)),
            other => Err(format!("unexpected value start {other:?}")),
        }
    }

    fn number(&mut self) -> Result<u64, String> {
        let start = self.i;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.i == start {
            return Err("expected a number".into());
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| "number out of range".into())
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Consume one UTF-8 scalar at a time so multi-byte characters
            // pass through unharmed.
            let rest = std::str::from_utf8(&self.b[self.i..])
                .map_err(|_| "invalid UTF-8 in string".to_string())?;
            let mut chars = rest.chars();
            let c = chars.next().ok_or("unterminated string")?;
            self.i += c.len_utf8();
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = chars.next().ok_or("unterminated escape")?;
                    self.i += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{0008}'),
                        'f' => out.push('\u{000c}'),
                        'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.i += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| format!("invalid code point {code:#x}"))?,
                            );
                        }
                        other => return Err(format!("unknown escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receiver of trace events. Implementations must be cheap: they run inline
/// on the I/O path of a traced run (but never on an untraced one). Sinks
/// must be [`Send`]: the tracer lives behind the context's shared state and
/// may be driven from any worker thread (calls are serialised by the
/// tracer's lock, so `Sync` is not required).
pub trait TraceSink: Send {
    /// Record one event.
    fn record(&mut self, ev: &TraceEvent);
    /// Flush any buffering (called at trace finish).
    fn flush(&mut self) {}
}

#[derive(Debug, Default)]
struct RingInner {
    cap: usize,
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

/// A bounded in-memory sink keeping the most recent events. Clones share
/// the buffer; keep one clone to inspect [`RingSink::events`] after the
/// run.
#[derive(Debug, Clone, Default)]
pub struct RingSink {
    inner: Arc<Mutex<RingInner>>,
}

impl RingSink {
    /// A ring holding at most `cap` events (`cap == 0` keeps everything).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(RingInner {
                cap,
                events: VecDeque::new(),
                dropped: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, RingInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// A copy of the buffered events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: &TraceEvent) {
        let mut g = self.lock();
        if g.cap > 0 && g.events.len() == g.cap {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(ev.clone());
    }
}

/// A streaming JSON-lines file sink: one [`TraceEvent`] per line. Write
/// errors are sticky and reported at flush time via
/// [`JsonlSink::had_error`]; they never fail the traced run itself.
#[derive(Debug)]
pub struct JsonlSink {
    w: std::io::BufWriter<std::fs::File>,
    error: bool,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let f = std::fs::File::create(path)?;
        Ok(Self {
            w: std::io::BufWriter::new(f),
            error: false,
        })
    }

    /// Whether any write to the trace file failed.
    pub fn had_error(&self) -> bool {
        self.error
    }
}

impl TraceSink for JsonlSink {
    fn record(&mut self, ev: &TraceEvent) {
        if writeln!(self.w, "{}", ev.to_json()).is_err() {
            self.error = true;
        }
    }

    fn flush(&mut self) {
        if self.w.flush().is_err() {
            self.error = true;
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.w.flush();
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

#[derive(Default)]
struct TraceState {
    sink: Option<Box<dyn TraceSink>>,
    epoch: Option<Instant>,
    next_id: u64,
    /// Open spans in open order. Not a pure stack: concurrent workers
    /// interleave opens and closes, so each entry remembers the thread
    /// that opened it and parent resolution is per-thread (see
    /// [`Tracer::span_open_under`]).
    open: Vec<OpenSpan>,
    files: BTreeMap<u64, FileTrack>,
}

/// One span that has been opened but not yet closed.
#[derive(Debug)]
struct OpenSpan {
    id: u64,
    /// Open timestamp, microseconds since trace begin.
    t0: u64,
    /// Thread that opened the span; used to resolve parents so worker
    /// threads nest under their own spans, not whichever span another
    /// thread happened to open last.
    thread: ThreadId,
}

#[derive(Default)]
struct FileTrack {
    access: FileAccess,
    last_read: Option<u64>,
    last_write: Option<u64>,
}

impl std::fmt::Debug for TraceState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceState")
            .field("sink", &self.sink.is_some())
            .field("next_id", &self.next_id)
            .field("open", &self.open)
            .field("files", &self.files.len())
            .finish()
    }
}

#[derive(Debug, Default)]
struct TracerInner {
    enabled: AtomicBool,
    /// Blocks currently allocated on the backing store. Tracked even when
    /// disabled (two atomic stores per block event) so a sink attached
    /// mid-run still reports an exact space gauge.
    live_blocks: AtomicU64,
    peak_blocks: AtomicU64,
    state: Mutex<TraceState>,
}

/// Cheaply cloneable handle to a context's trace channel. Obtained from
/// [`crate::EmContext::tracer`]; disabled (every hook a single atomic flag
/// check) until a sink is installed. Thread-safe: events from concurrent
/// workers are serialised through the tracer's lock.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Tracer {
    /// Whether a sink is installed and events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    fn state(&self) -> MutexGuard<'_, TraceState> {
        self.inner.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Install `sink`, enable tracing, and emit [`TraceEvent::Begin`] with
    /// the machine geometry. Replaces any previous sink without flushing
    /// it; call [`Tracer::finish`] first to end a trace cleanly.
    pub fn install(&self, sink: Box<dyn TraceSink>, mem: u64, block: u64) {
        let mut st = self.state();
        st.sink = Some(sink);
        st.epoch = Some(Instant::now());
        st.next_id = 0;
        st.open.clear();
        st.files.clear();
        self.inner.enabled.store(true, Ordering::Relaxed);
        let ev = TraceEvent::Begin {
            t_us: 0,
            mem,
            block,
        };
        if let Some(s) = st.sink.as_mut() {
            s.record(&ev);
        }
    }

    /// End the trace: emit per-file [`TraceEvent::FileSummary`] events and
    /// [`TraceEvent::End`], flush and drop the sink, disable tracing.
    /// Spans still open at this point are deliberately left unclosed in
    /// the output — report tooling treats them as an error.
    pub fn finish(&self) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state();
        let t_us = now_us(&st);
        let files: Vec<(u64, FileAccess)> = st
            .files
            .iter()
            .map(|(id, tr)| (*id, tr.access.clone()))
            .collect();
        if let Some(sink) = st.sink.as_mut() {
            for (file, access) in files {
                sink.record(&TraceEvent::FileSummary {
                    file,
                    access: Box::new(access),
                });
            }
            sink.record(&TraceEvent::End {
                t_us,
                live_blocks: self.inner.live_blocks.load(Ordering::Relaxed),
                peak_blocks: self.inner.peak_blocks.load(Ordering::Relaxed),
            });
            sink.flush();
        }
        st.sink = None;
        st.epoch = None;
        st.open.clear();
        st.files.clear();
        self.inner.enabled.store(false, Ordering::Relaxed);
    }

    /// Open a span with an explicit parent (`Some(0)` forces a root).
    /// When `parent` is `None` the parent is resolved in order of
    /// preference: the calling thread's innermost open span; else the
    /// oldest open span of any thread (so spans opened from worker
    /// threads attach under the enclosing charged phase instead of
    /// becoming spurious roots, which would break delta conservation);
    /// else 0 (root). Returns the span id, or 0 when tracing is disabled.
    pub(crate) fn span_open_under(&self, name: &str, parent: Option<u64>) -> u64 {
        if !self.is_enabled() {
            return 0;
        }
        let thread = std::thread::current().id();
        let mut st = self.state();
        let t_us = now_us(&st);
        st.next_id += 1;
        let id = st.next_id;
        let parent = parent.unwrap_or_else(|| resolve_parent(&st, thread));
        st.open.push(OpenSpan {
            id,
            t0: t_us,
            thread,
        });
        let ev = TraceEvent::SpanOpen {
            id,
            parent,
            name: name.to_string(),
            t_us,
        };
        if let Some(s) = st.sink.as_mut() {
            s.record(&ev);
        }
        id
    }

    /// Close span `id` with its counter delta. No-op for id 0 (spans opened
    /// while tracing was disabled) and for ids that are not open — the
    /// stats layer debug-asserts against unbalanced phases.
    pub(crate) fn span_close(&self, id: u64, delta: &Counters) {
        if id == 0 || !self.is_enabled() {
            return;
        }
        let mut st = self.state();
        let t_us = now_us(&st);
        // Ids are unique, so search from the innermost end; concurrent
        // workers interleave closes, so the match need not be last.
        let Some(idx) = st.open.iter().rposition(|s| s.id == id) else {
            return;
        };
        let t0 = st.open.remove(idx).t0;
        let ev = TraceEvent::SpanClose {
            id,
            t_us,
            dur_us: t_us.saturating_sub(t0),
            delta: *delta,
        };
        if let Some(s) = st.sink.as_mut() {
            s.record(&ev);
        }
    }

    /// Emit a point event attributed to the calling thread's innermost
    /// open span (falling back to the oldest open span, then to 0).
    pub fn point(&self, kind: PointKind) {
        if !self.is_enabled() {
            return;
        }
        let thread = std::thread::current().id();
        let mut st = self.state();
        let t_us = now_us(&st);
        let span = resolve_parent(&st, thread);
        let ev = TraceEvent::Point { kind, span, t_us };
        if let Some(s) = st.sink.as_mut() {
            s.record(&ev);
        }
    }

    /// Record one block transfer for access-pattern analytics.
    pub(crate) fn note_access(&self, op: IoOp, file: u64, block: u64) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.state();
        let track = st.files.entry(file).or_default();
        let prev = match op {
            IoOp::Read => track.last_read.replace(block),
            IoOp::Write => track.last_write.replace(block),
        };
        track.access.note(op, block, prev);
    }

    /// Blocks allocated on the backing store (always tracked).
    pub(crate) fn note_blocks_alloc(&self, n: u64) {
        let live = self
            .inner
            .live_blocks
            .fetch_add(n, Ordering::Relaxed)
            .saturating_add(n);
        self.inner.peak_blocks.fetch_max(live, Ordering::Relaxed);
    }

    /// Blocks released from the backing store (always tracked).
    pub(crate) fn note_blocks_free(&self, n: u64) {
        let _ = self
            .inner
            .live_blocks
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
    }

    /// Blocks currently allocated on the backing store.
    pub fn live_blocks(&self) -> u64 {
        self.inner.live_blocks.load(Ordering::Relaxed)
    }

    /// Peak blocks allocated over the context's lifetime.
    pub fn peak_blocks(&self) -> u64 {
        self.inner.peak_blocks.load(Ordering::Relaxed)
    }

    /// Number of currently open spans (0 when disabled).
    pub fn open_spans(&self) -> usize {
        self.state().open.len()
    }

    /// Access statistics recorded so far for `file`, if any.
    pub fn file_access(&self, file: u64) -> Option<FileAccess> {
        self.state().files.get(&file).map(|t| t.access.clone())
    }
}

fn now_us(st: &TraceState) -> u64 {
    st.epoch
        .map(|e| e.elapsed().as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// Innermost open span of `thread`, else the oldest open span of any
/// thread, else 0.
fn resolve_parent(st: &TraceState, thread: ThreadId) -> u64 {
    st.open
        .iter()
        .rev()
        .find(|s| s.thread == thread)
        .or_else(|| st.open.first())
        .map(|s| s.id)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(ev: TraceEvent) {
        let line = ev.to_json();
        let back = TraceEvent::parse(&line).unwrap_or_else(|e| panic!("{e}: {line}"));
        assert_eq!(back, ev, "line: {line}");
    }

    #[test]
    fn events_roundtrip_through_json() {
        roundtrip(TraceEvent::Begin {
            t_us: 0,
            mem: 4096,
            block: 64,
        });
        roundtrip(TraceEvent::SpanOpen {
            id: 3,
            parent: 1,
            name: "multi-select/pruned".into(),
            t_us: 17,
        });
        roundtrip(TraceEvent::SpanClose {
            id: 3,
            t_us: 400,
            dur_us: 383,
            delta: Counters {
                reads: 10,
                writes: 4,
                comparisons: 99,
                bytes_read: 1 << 40,
                bytes_written: 7,
                retries: 2,
                corrupt_reads: 1,
                journal_writes: 3,
                redone_ios: 5,
                physical_reads: 8,
                physical_writes: 4,
                cache_hits: 2,
                cache_misses: 8,
                shed_queries: 1,
                breaker_trips: 1,
                degraded_answers: 6,
                mem_denials: 2,
                mem_reclaims: 1,
            },
        });
        roundtrip(TraceEvent::Point {
            kind: PointKind::Retry { op: IoOp::Write },
            span: 2,
            t_us: 9,
        });
        roundtrip(TraceEvent::Point {
            kind: PointKind::Fault {
                kind: FaultKind::TornWrite,
                op: IoOp::Write,
                file: 12,
            },
            span: 0,
            t_us: 1,
        });
        roundtrip(TraceEvent::Point {
            kind: PointKind::JournalCommit {
                name: "sort-manifest".into(),
            },
            span: 4,
            t_us: 2,
        });
        roundtrip(TraceEvent::Point {
            kind: PointKind::WorkUnitRedo { ios: 123 },
            span: 9,
            t_us: 3,
        });
        roundtrip(TraceEvent::Point {
            kind: PointKind::Governor {
                event: "squeeze".into(),
                words: 8192,
            },
            span: 0,
            t_us: 4,
        });
        let mut access = FileAccess::default();
        for b in 0..100 {
            access.note(IoOp::Write, b, b.checked_sub(1));
        }
        access.note(IoOp::Read, 50, None);
        access.note(IoOp::Read, 3, Some(50));
        roundtrip(TraceEvent::FileSummary {
            file: 7,
            access: Box::new(access),
        });
        roundtrip(TraceEvent::End {
            t_us: 1_000_000,
            live_blocks: 42,
            peak_blocks: 99,
        });
    }

    #[test]
    fn escaping_handles_hostile_names() {
        for name in [
            "plain",
            "with \"quotes\" and \\backslashes\\",
            "newline\nand\ttab\rand\u{0001}control",
            "unicode: héllo → 世界 𝄞",
            "",
        ] {
            roundtrip(TraceEvent::SpanOpen {
                id: 1,
                parent: 0,
                name: name.into(),
                t_us: 0,
            });
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(TraceEvent::parse("").is_err());
        assert!(TraceEvent::parse("{}").is_err());
        assert!(TraceEvent::parse("{\"e\":\"nope\"}").is_err());
        assert!(TraceEvent::parse("{\"e\":\"open\",\"id\":1").is_err());
        assert!(TraceEvent::parse("{\"e\":\"open\"} tail").is_err());
    }

    #[test]
    fn ring_sink_bounded() {
        let ring = RingSink::new(4);
        let mut sink: Box<dyn TraceSink> = Box::new(ring.clone());
        for i in 0..10 {
            sink.record(&TraceEvent::SpanOpen {
                id: i,
                parent: 0,
                name: "x".into(),
                t_us: i,
            });
        }
        assert_eq!(ring.events().len(), 4);
        assert_eq!(ring.dropped(), 6);
        // Oldest evicted: the survivors are ids 6..10.
        match &ring.events()[0] {
            TraceEvent::SpanOpen { id, .. } => assert_eq!(*id, 6),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tracer_spans_nest_and_attribute_points() {
        let tracer = Tracer::default();
        assert!(!tracer.is_enabled());
        assert_eq!(tracer.span_open_under("ignored", None), 0);
        let ring = RingSink::new(0);
        tracer.install(Box::new(ring.clone()), 4096, 64);
        let a = tracer.span_open_under("a", None);
        let b = tracer.span_open_under("b", None);
        tracer.point(PointKind::Retry { op: IoOp::Read });
        tracer.span_close(b, &Counters::default());
        let c = tracer.span_open_under("c", None);
        tracer.span_close(c, &Counters::default());
        tracer.span_close(a, &Counters::default());
        tracer.finish();
        let evs = ring.events();
        let parent_of = |name: &str| {
            evs.iter()
                .find_map(|e| match e {
                    TraceEvent::SpanOpen {
                        name: n, parent, ..
                    } if n == name => Some(*parent),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(parent_of("a"), 0);
        assert_eq!(parent_of("b"), a);
        assert_eq!(parent_of("c"), a);
        let point_span = evs
            .iter()
            .find_map(|e| match e {
                TraceEvent::Point { span, .. } => Some(*span),
                _ => None,
            })
            .unwrap();
        assert_eq!(point_span, b);
        assert!(matches!(evs.last(), Some(TraceEvent::End { .. })));
        assert!(!tracer.is_enabled());
    }

    #[test]
    fn worker_thread_spans_nest_under_oldest_open_span() {
        let tracer = Tracer::default();
        let ring = RingSink::new(0);
        tracer.install(Box::new(ring.clone()), 4096, 64);
        let root = tracer.span_open_under("root", None);
        // A worker with no spans of its own attaches under the oldest
        // open span (the coordinating phase), not at the root level.
        let (w_outer, w_inner) = std::thread::scope(|s| {
            s.spawn(|| {
                let outer = tracer.span_open_under("w-outer", None);
                let inner = tracer.span_open_under("w-inner", None);
                tracer.span_close(inner, &Counters::default());
                tracer.span_close(outer, &Counters::default());
                (outer, inner)
            })
            .join()
            .unwrap()
        });
        // Meanwhile an explicit parent always wins.
        let pinned = tracer.span_open_under("pinned", Some(root));
        tracer.span_close(pinned, &Counters::default());
        tracer.span_close(root, &Counters::default());
        tracer.finish();
        let evs = ring.events();
        let parent_of = |want: u64| {
            evs.iter()
                .find_map(|e| match e {
                    TraceEvent::SpanOpen { id, parent, .. } if *id == want => Some(*parent),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(parent_of(w_outer), root, "worker falls back to oldest open");
        assert_eq!(parent_of(w_inner), w_outer, "same-thread nesting wins");
        assert_eq!(parent_of(pinned), root);
    }

    #[test]
    fn heatmap_folds_as_file_grows() {
        let mut a = FileAccess::default();
        let mut prev = None;
        for b in 0..1000u64 {
            a.note(IoOp::Write, b, prev);
            prev = Some(b);
        }
        assert_eq!(a.writes, 1000);
        assert_eq!(a.seq_writes, 1000);
        assert_eq!(a.write_heat.iter().sum::<u64>(), 1000);
        // 1000 blocks across 16 buckets needs 64 blocks per bucket.
        assert_eq!(a.heat_scale, 64);
        assert_eq!(a.seeks, 0);
        assert_eq!(a.mean_seek(), 0.0);
        assert_eq!(a.sequential_fraction(), 1.0);
    }

    #[test]
    fn random_access_classified_with_seek_distances() {
        let mut a = FileAccess::default();
        a.note(IoOp::Read, 0, None); // first: sequential
        a.note(IoOp::Read, 1, Some(0)); // next: sequential
        a.note(IoOp::Read, 1, Some(1)); // re-read: sequential
        a.note(IoOp::Read, 10, Some(1)); // seek of |10 - 2| = 8
        a.note(IoOp::Read, 2, Some(10)); // seek of |2 - 11| = 9
        assert_eq!(a.seq_reads, 3);
        assert_eq!(a.rand_reads, 2);
        assert_eq!(a.seeks, 2);
        assert_eq!(a.max_seek, 9);
        assert_eq!(a.sum_seek, 17);
        assert!((a.mean_seek() - 8.5).abs() < 1e-9);
    }

    #[test]
    fn gauge_tracks_even_when_disabled() {
        let tracer = Tracer::default();
        tracer.note_blocks_alloc(5);
        tracer.note_blocks_alloc(3);
        tracer.note_blocks_free(6);
        assert_eq!(tracer.live_blocks(), 2);
        assert_eq!(tracer.peak_blocks(), 8);
    }
}
