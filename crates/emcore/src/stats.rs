//! I/O accounting.
//!
//! Every block transfer performed through an [`crate::EmFile`] is charged to
//! the [`IoStats`] handle of the owning [`crate::EmContext`]. Counters can be
//! snapshotted and diffed, and named *phases* attribute I/Os to
//! sub-algorithms (e.g. "sample", "distribute", "base-case").

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// A plain set of counters. Snapshots and phase totals use this type.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Block reads.
    pub reads: u64,
    /// Block writes.
    pub writes: u64,
    /// Key comparisons (only charged by algorithms that opt in).
    pub comparisons: u64,
    /// Bytes read from the file backend (0 on the memory backend).
    pub bytes_read: u64,
    /// Bytes written to the file backend (0 on the memory backend).
    pub bytes_written: u64,
    /// Device attempts that failed and were retried under the context's
    /// [`crate::RetryPolicy`]. Successful attempts are charged to
    /// `reads`/`writes` as usual, so with an empty fault plan this is 0 and
    /// every other counter is unchanged.
    pub retries: u64,
    /// Block reads that failed checksum verification (each such attempt also
    /// counts toward `retries` if it was retried).
    pub corrupt_reads: u64,
    /// Checkpoint-journal commits (see [`crate::Journal`]). Journal commits
    /// are host-side metadata writes, not block transfers, so they are *not*
    /// part of [`Counters::total_ios`].
    pub journal_writes: u64,
    /// Block I/Os spent *re-executing* a work unit that a crash interrupted
    /// (charged by recoverable algorithms when they redo an in-flight unit
    /// on resume). These I/Os are also counted in `reads`/`writes`; this
    /// counter isolates the rework overhead.
    pub redone_ios: u64,
}

impl Counters {
    /// Total block I/Os: reads + writes.
    #[inline]
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference `self - earlier`. Saturates at zero so that
    /// diffing against a later snapshot does not panic in release builds.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            retries: self.retries.saturating_sub(earlier.retries),
            corrupt_reads: self.corrupt_reads.saturating_sub(earlier.corrupt_reads),
            journal_writes: self.journal_writes.saturating_sub(earlier.journal_writes),
            redone_ios: self.redone_ios.saturating_sub(earlier.redone_ios),
        }
    }

    /// Component-wise sum.
    pub fn plus(&self, other: &Counters) -> Counters {
        Counters {
            reads: self.reads + other.reads,
            writes: self.writes + other.writes,
            comparisons: self.comparisons + other.comparisons,
            bytes_read: self.bytes_read + other.bytes_read,
            bytes_written: self.bytes_written + other.bytes_written,
            retries: self.retries + other.retries,
            corrupt_reads: self.corrupt_reads + other.corrupt_reads,
            journal_writes: self.journal_writes + other.journal_writes,
            redone_ios: self.redone_ios + other.redone_ios,
        }
    }
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes)",
            self.total_ios(),
            self.reads,
            self.writes
        )
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    counters: Counters,
    paused: u32,
    phase_stack: Vec<(String, Counters)>,
    phase_totals: BTreeMap<String, Counters>,
}

/// Cheaply cloneable handle to a shared set of I/O counters.
///
/// The runtime is single-threaded (the EM model is sequential), so interior
/// mutability via `RefCell` suffices and keeps the hot counter increments
/// branch-cheap.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Rc<RefCell<StatsInner>>,
}

impl IoStats {
    /// Fresh, zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_read(&self, bytes: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.reads += 1;
            g.counters.bytes_read += bytes;
        }
    }

    #[inline]
    pub(crate) fn record_write(&self, bytes: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.writes += 1;
            g.counters.bytes_written += bytes;
        }
    }

    /// Charge one retried device attempt (see [`Counters::retries`]).
    #[inline]
    pub(crate) fn record_retry(&self) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.retries += 1;
        }
    }

    /// Charge one checksum-verification failure.
    #[inline]
    pub(crate) fn record_corrupt_read(&self) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.corrupt_reads += 1;
        }
    }

    /// Charge one checkpoint-journal commit. Journal commits are metadata
    /// writes outside the block-I/O model, so `total_ios` is unaffected.
    #[inline]
    pub fn record_journal_write(&self) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.journal_writes += 1;
        }
    }

    /// Charge `n` block I/Os as *rework*: I/Os spent re-executing a work
    /// unit that a crash interrupted. Called by recoverable algorithms when
    /// a resumed run redoes its in-flight unit; the I/Os themselves are
    /// already in `reads`/`writes`.
    #[inline]
    pub fn record_redone_ios(&self, n: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.redone_ios += n;
        }
    }

    /// Charge `n` key comparisons. Algorithms that want comparison counts
    /// (e.g. for checking the `Θ(N lg K)` internal-memory bound) call this.
    #[inline]
    pub fn record_comparisons(&self, n: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.comparisons += n;
        }
    }

    /// Charge `n` synthetic block reads. Used by top-level entry points to
    /// account for consuming caller-supplied rank lists (see DESIGN.md,
    /// model-fidelity notes).
    pub fn charge_reads(&self, n: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.reads += n;
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> Counters {
        self.inner.borrow().counters
    }

    /// Reset all counters and phase records to zero.
    pub fn reset(&self) {
        let mut g = self.inner.borrow_mut();
        g.counters = Counters::default();
        g.phase_stack.clear();
        g.phase_totals.clear();
    }

    /// Run `f` without recording any I/O. Used for workload materialisation
    /// and verification scans that are not part of the algorithm under
    /// measurement. Pauses nest.
    pub fn paused<R>(&self, f: impl FnOnce() -> R) -> R {
        self.inner.borrow_mut().paused += 1;
        let _guard = PauseGuard { stats: self };
        f()
    }

    /// Begin a named phase. Phases nest; each `end_phase` closes the most
    /// recent open phase and adds its delta to that phase's running total.
    pub fn begin_phase(&self, name: impl Into<String>) {
        let mut g = self.inner.borrow_mut();
        let snap = g.counters;
        g.phase_stack.push((name.into(), snap));
    }

    /// End the innermost open phase, returning its delta. Returns `None` if
    /// no phase is open.
    pub fn end_phase(&self) -> Option<Counters> {
        let mut g = self.inner.borrow_mut();
        let (name, start) = g.phase_stack.pop()?;
        let delta = g.counters.since(&start);
        let slot = g.phase_totals.entry(name).or_default();
        *slot = slot.plus(&delta);
        Some(delta)
    }

    /// Run `f` inside a named phase.
    pub fn phase<R>(&self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        self.begin_phase(name);
        let r = f();
        self.end_phase();
        r
    }

    /// Accumulated totals per phase name, in name order.
    pub fn phase_totals(&self) -> Vec<(String, Counters)> {
        self.inner
            .borrow()
            .phase_totals
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

struct PauseGuard<'a> {
    stats: &'a IoStats,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.stats.inner.borrow_mut().paused -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let s = IoStats::new();
        s.record_read(128);
        s.record_read(128);
        s.record_write(64);
        let c = s.snapshot();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.total_ios(), 3);
        assert_eq!(c.bytes_read, 256);
        assert_eq!(c.bytes_written, 64);
    }

    #[test]
    fn since_diffs() {
        let s = IoStats::new();
        s.record_read(0);
        let snap = s.snapshot();
        s.record_read(0);
        s.record_write(0);
        let d = s.snapshot().since(&snap);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn paused_suppresses_counting() {
        let s = IoStats::new();
        s.paused(|| {
            s.record_read(0);
            s.record_write(0);
            // nesting
            s.paused(|| s.record_read(0));
            s.record_read(0);
        });
        s.record_read(0);
        assert_eq!(s.snapshot().total_ios(), 1);
    }

    #[test]
    fn phases_accumulate() {
        let s = IoStats::new();
        s.phase("scan", || {
            s.record_read(0);
            s.record_read(0);
        });
        s.phase("scan", || s.record_read(0));
        s.phase("merge", || s.record_write(0));
        let totals = s.phase_totals();
        assert_eq!(totals.len(), 2);
        let scan = totals.iter().find(|(n, _)| n == "scan").unwrap();
        assert_eq!(scan.1.reads, 3);
        let merge = totals.iter().find(|(n, _)| n == "merge").unwrap();
        assert_eq!(merge.1.writes, 1);
    }

    #[test]
    fn nested_phases_charge_both() {
        let s = IoStats::new();
        s.begin_phase("outer");
        s.record_read(0);
        s.begin_phase("inner");
        s.record_read(0);
        let inner = s.end_phase().unwrap();
        let outer = s.end_phase().unwrap();
        assert_eq!(inner.reads, 1);
        assert_eq!(outer.reads, 2);
        assert!(s.end_phase().is_none());
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_read(8);
        s.phase("p", || s.record_write(8));
        s.reset();
        assert_eq!(s.snapshot(), Counters::default());
        assert!(s.phase_totals().is_empty());
    }

    #[test]
    fn retries_and_corrupt_reads_tracked() {
        let s = IoStats::new();
        s.record_retry();
        s.record_retry();
        s.record_corrupt_read();
        s.paused(|| {
            s.record_retry();
            s.record_corrupt_read();
        });
        let c = s.snapshot();
        assert_eq!(c.retries, 2);
        assert_eq!(c.corrupt_reads, 1);
        // Retries are not block I/Os.
        assert_eq!(c.total_ios(), 0);
    }

    #[test]
    fn journal_and_redo_counters_tracked() {
        let s = IoStats::new();
        s.record_journal_write();
        s.record_redone_ios(7);
        s.paused(|| {
            s.record_journal_write();
            s.record_redone_ios(5);
        });
        let c = s.snapshot();
        assert_eq!(c.journal_writes, 1);
        assert_eq!(c.redone_ios, 7);
        // Neither counter is a block transfer.
        assert_eq!(c.total_ios(), 0);
        let d = s.snapshot().since(&Counters::default());
        assert_eq!(d.journal_writes, 1);
        assert_eq!(d.redone_ios, 7);
    }

    #[test]
    fn comparisons_tracked() {
        let s = IoStats::new();
        s.record_comparisons(10);
        s.paused(|| s.record_comparisons(5));
        assert_eq!(s.snapshot().comparisons, 10);
    }
}
