//! I/O accounting.
//!
//! Every block transfer performed through an [`crate::EmFile`] is charged to
//! the [`IoStats`] handle of the owning [`crate::EmContext`]. Counters can be
//! snapshotted and diffed, and named *phases* attribute I/Os to
//! sub-algorithms (e.g. "sample", "distribute", "base-case"). Phases double
//! as trace spans: when a [`crate::TraceSink`] is installed on the context,
//! every phase open/close is emitted as a span event carrying its exact
//! counter delta (see [`crate::trace`]).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::ThreadId;

use crate::fault::IoOp;
use crate::trace::{PointKind, Tracer};

/// A plain set of counters. Snapshots and phase totals use this type.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Block reads.
    pub reads: u64,
    /// Block writes.
    pub writes: u64,
    /// Key comparisons (only charged by algorithms that opt in).
    pub comparisons: u64,
    /// Bytes read from the file backend (0 on the memory backend).
    pub bytes_read: u64,
    /// Bytes written to the file backend (0 on the memory backend).
    pub bytes_written: u64,
    /// Device attempts that failed and were retried under the context's
    /// [`crate::RetryPolicy`]. Successful attempts are charged to
    /// `reads`/`writes` as usual, so with an empty fault plan this is 0 and
    /// every other counter is unchanged.
    pub retries: u64,
    /// Block reads that failed checksum verification (each such attempt also
    /// counts toward `retries` if it was retried).
    pub corrupt_reads: u64,
    /// Checkpoint-journal commits (see [`crate::Journal`]). Journal commits
    /// are host-side metadata writes, not block transfers, so they are *not*
    /// part of [`Counters::total_ios`].
    pub journal_writes: u64,
    /// Block I/Os spent *re-executing* a work unit that a crash interrupted
    /// (charged by recoverable algorithms when they redo an in-flight unit
    /// on resume). These I/Os are also counted in `reads`/`writes`; this
    /// counter isolates the rework overhead.
    pub redone_ios: u64,
    /// Physical block reads actually performed by the device layer —
    /// block-cache misses plus uncached reads. With the cache disabled
    /// (`cache_blocks = 0`) every logical read is physical, so this equals
    /// `reads`.
    pub physical_reads: u64,
    /// Physical block writes performed by the device layer. The block cache
    /// is write-through (writes are never absorbed), so this always equals
    /// `writes`.
    pub physical_writes: u64,
    /// Block-cache hits: logical reads served from the buffer pool without
    /// a device transfer. Always 0 with the cache disabled.
    pub cache_hits: u64,
    /// Block-cache misses: logical reads that consulted the buffer pool,
    /// went to the device, and populated a frame. Always 0 with the cache
    /// disabled.
    pub cache_misses: u64,
    /// Queries the serving layer shed at admission because their deadline
    /// had already expired (no I/O was spent on them).
    pub shed_queries: u64,
    /// Serving-layer circuit-breaker trips: a dataset entered the
    /// `Unhealthy` (fail-fast) state after consecutive fatal batch
    /// failures.
    pub breaker_trips: u64,
    /// Queries answered *approximately* from a splitter-index skeleton
    /// alone (zero I/O, explicit rank-error bound) instead of being shed.
    pub degraded_answers: u64,
    /// Strict-mode memory charges denied with a typed
    /// [`crate::EmError::MemoryExceeded`] (the caller retried smaller,
    /// degraded, or surfaced the error — nothing panicked).
    pub mem_denials: u64,
    /// Governor budget squeezes delivered via `EmContext::set_mem_budget`
    /// (shrinks only; restores are visible in the trace stream).
    pub mem_reclaims: u64,
}

impl Counters {
    /// Total block I/Os: reads + writes.
    #[inline]
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Model-charged (*logical*) block I/Os — a synonym for
    /// [`Counters::total_ios`], named for the logical/physical split. Every
    /// Table-1 comparison and predicted-bound check uses this quantity: a
    /// block-cache hit is still one logical I/O in the EM model, so enabling
    /// the cache never changes it.
    #[inline]
    pub fn logical_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Physical device transfers: `physical_reads + physical_writes`. This
    /// is what the hardware actually did; `logical_ios - physical_ios` is
    /// the traffic the buffer pool absorbed.
    #[inline]
    pub fn physical_ios(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Cache hit rate over logical reads that consulted the buffer pool
    /// (`hits / (hits + misses)`); 0.0 when the cache never engaged.
    pub fn cache_hit_rate(&self) -> f64 {
        let looked = self.cache_hits + self.cache_misses;
        if looked == 0 {
            0.0
        } else {
            self.cache_hits as f64 / looked as f64
        }
    }

    /// Component-wise difference `self - earlier`. Saturates at zero so that
    /// diffing against a later snapshot does not panic in release builds.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            retries: self.retries.saturating_sub(earlier.retries),
            corrupt_reads: self.corrupt_reads.saturating_sub(earlier.corrupt_reads),
            journal_writes: self.journal_writes.saturating_sub(earlier.journal_writes),
            redone_ios: self.redone_ios.saturating_sub(earlier.redone_ios),
            physical_reads: self.physical_reads.saturating_sub(earlier.physical_reads),
            physical_writes: self.physical_writes.saturating_sub(earlier.physical_writes),
            cache_hits: self.cache_hits.saturating_sub(earlier.cache_hits),
            cache_misses: self.cache_misses.saturating_sub(earlier.cache_misses),
            shed_queries: self.shed_queries.saturating_sub(earlier.shed_queries),
            breaker_trips: self.breaker_trips.saturating_sub(earlier.breaker_trips),
            degraded_answers: self
                .degraded_answers
                .saturating_sub(earlier.degraded_answers),
            mem_denials: self.mem_denials.saturating_sub(earlier.mem_denials),
            mem_reclaims: self.mem_reclaims.saturating_sub(earlier.mem_reclaims),
        }
    }

    /// Component-wise sum. Saturates like [`Counters::since`] so that
    /// accumulating totals over a long campaign can never overflow-panic in
    /// debug builds.
    pub fn plus(&self, other: &Counters) -> Counters {
        Counters {
            reads: self.reads.saturating_add(other.reads),
            writes: self.writes.saturating_add(other.writes),
            comparisons: self.comparisons.saturating_add(other.comparisons),
            bytes_read: self.bytes_read.saturating_add(other.bytes_read),
            bytes_written: self.bytes_written.saturating_add(other.bytes_written),
            retries: self.retries.saturating_add(other.retries),
            corrupt_reads: self.corrupt_reads.saturating_add(other.corrupt_reads),
            journal_writes: self.journal_writes.saturating_add(other.journal_writes),
            redone_ios: self.redone_ios.saturating_add(other.redone_ios),
            physical_reads: self.physical_reads.saturating_add(other.physical_reads),
            physical_writes: self.physical_writes.saturating_add(other.physical_writes),
            cache_hits: self.cache_hits.saturating_add(other.cache_hits),
            cache_misses: self.cache_misses.saturating_add(other.cache_misses),
            shed_queries: self.shed_queries.saturating_add(other.shed_queries),
            breaker_trips: self.breaker_trips.saturating_add(other.breaker_trips),
            degraded_answers: self.degraded_answers.saturating_add(other.degraded_answers),
            mem_denials: self.mem_denials.saturating_add(other.mem_denials),
            mem_reclaims: self.mem_reclaims.saturating_add(other.mem_reclaims),
        }
    }
}

/// Render a byte count with a binary-unit suffix ("3.2 MiB").
fn fmt_bytes(f: &mut std::fmt::Formatter<'_>, bytes: u64) -> std::fmt::Result {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        write!(f, "{bytes} B")
    } else {
        write!(f, "{v:.1} {}", UNITS[unit])
    }
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes, ",
            self.total_ios(),
            self.reads,
            self.writes
        )?;
        fmt_bytes(f, self.bytes_read)?;
        write!(f, " read, ")?;
        fmt_bytes(f, self.bytes_written)?;
        write!(f, " written)")?;
        if self.retries != 0 {
            write!(f, ", {} retries", self.retries)?;
        }
        if self.corrupt_reads != 0 {
            write!(f, ", {} corrupt reads", self.corrupt_reads)?;
        }
        if self.journal_writes != 0 {
            write!(f, ", {} journal commits", self.journal_writes)?;
        }
        if self.redone_ios != 0 {
            write!(f, ", {} redone I/Os", self.redone_ios)?;
        }
        if self.cache_hits + self.cache_misses != 0 {
            write!(
                f,
                ", cache {}/{} hits ({} physical I/Os)",
                self.cache_hits,
                self.cache_hits + self.cache_misses,
                self.physical_ios()
            )?;
        }
        if self.shed_queries != 0 {
            write!(f, ", {} shed queries", self.shed_queries)?;
        }
        if self.breaker_trips != 0 {
            write!(f, ", {} breaker trips", self.breaker_trips)?;
        }
        if self.degraded_answers != 0 {
            write!(f, ", {} degraded answers", self.degraded_answers)?;
        }
        if self.mem_denials != 0 {
            write!(f, ", {} mem denials", self.mem_denials)?;
        }
        if self.mem_reclaims != 0 {
            write!(f, ", {} mem reclaims", self.mem_reclaims)?;
        }
        Ok(())
    }
}

/// One open phase/span on the stack.
#[derive(Debug)]
struct Scope {
    name: String,
    start: Counters,
    /// Trace span id (0 when tracing was disabled at open time).
    span: u64,
    /// Whether the delta is added to `phase_totals` on close. Trace-only
    /// spans (work units, recursion levels) set this false so they appear
    /// in the span tree without double-counting in the flat totals.
    charge: bool,
}

/// The counters themselves, as per-field relaxed atomics. Charging an I/O
/// from a worker thread is a couple of `fetch_add`s — no lock, no parking —
/// so the accounting layer stays off the critical path of a parallel sort
/// even when every worker charges on every block.
#[derive(Debug, Default)]
struct AtomicCounters {
    reads: AtomicU64,
    writes: AtomicU64,
    comparisons: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    retries: AtomicU64,
    corrupt_reads: AtomicU64,
    journal_writes: AtomicU64,
    redone_ios: AtomicU64,
    physical_reads: AtomicU64,
    physical_writes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    shed_queries: AtomicU64,
    breaker_trips: AtomicU64,
    degraded_answers: AtomicU64,
    mem_denials: AtomicU64,
    mem_reclaims: AtomicU64,
}

impl AtomicCounters {
    fn load(&self) -> Counters {
        Counters {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            comparisons: self.comparisons.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            corrupt_reads: self.corrupt_reads.load(Ordering::Relaxed),
            journal_writes: self.journal_writes.load(Ordering::Relaxed),
            redone_ios: self.redone_ios.load(Ordering::Relaxed),
            physical_reads: self.physical_reads.load(Ordering::Relaxed),
            physical_writes: self.physical_writes.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            shed_queries: self.shed_queries.load(Ordering::Relaxed),
            breaker_trips: self.breaker_trips.load(Ordering::Relaxed),
            degraded_answers: self.degraded_answers.load(Ordering::Relaxed),
            mem_denials: self.mem_denials.load(Ordering::Relaxed),
            mem_reclaims: self.mem_reclaims.load(Ordering::Relaxed),
        }
    }

    fn zero(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.comparisons.store(0, Ordering::Relaxed);
        self.bytes_read.store(0, Ordering::Relaxed);
        self.bytes_written.store(0, Ordering::Relaxed);
        self.retries.store(0, Ordering::Relaxed);
        self.corrupt_reads.store(0, Ordering::Relaxed);
        self.journal_writes.store(0, Ordering::Relaxed);
        self.redone_ios.store(0, Ordering::Relaxed);
        self.physical_reads.store(0, Ordering::Relaxed);
        self.physical_writes.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.shed_queries.store(0, Ordering::Relaxed);
        self.breaker_trips.store(0, Ordering::Relaxed);
        self.degraded_answers.store(0, Ordering::Relaxed);
        self.mem_denials.store(0, Ordering::Relaxed);
        self.mem_reclaims.store(0, Ordering::Relaxed);
    }
}

/// Bookkeeping that genuinely needs mutual exclusion: phase scopes and
/// totals. The hot counters live outside this lock (see [`AtomicCounters`]);
/// this mutex is only taken at phase boundaries and for reports.
#[derive(Debug, Default)]
struct StatsInner {
    /// Open phases, kept **per thread**: concurrent workers each see their
    /// own LIFO stack, so interleaved begin/end from different threads never
    /// pop each other's scopes.
    scope_stacks: HashMap<ThreadId, Vec<Scope>>,
    phase_totals: BTreeMap<String, Counters>,
}

impl StatsInner {
    /// The calling thread's scope stack (created on first use).
    fn stack(&mut self) -> &mut Vec<Scope> {
        self.scope_stacks
            .entry(std::thread::current().id())
            .or_default()
    }

    fn open_scope_names(&self) -> Vec<&str> {
        self.scope_stacks
            .values()
            .flatten()
            .map(|s| s.name.as_str())
            .collect()
    }
}

impl Drop for StatsInner {
    fn drop(&mut self) {
        // An open phase at teardown means a begin_phase without a matching
        // end_phase somewhere — attribution was silently dropped. Only
        // assert when not already unwinding, to avoid a double panic.
        if !std::thread::panicking() {
            let open = self.open_scope_names();
            debug_assert!(
                open.is_empty(),
                "IoStats dropped with {} open phase(s): {:?} — use phase_guard()",
                open.len(),
                open
            );
        }
    }
}

/// Shared state of one [`IoStats`] handle: lock-free hot counters plus a
/// mutex for the cold phase bookkeeping.
#[derive(Debug, Default)]
struct StatsShared {
    counters: AtomicCounters,
    /// Nesting depth of [`IoStats::paused`] sections.
    paused: AtomicU32,
    /// The trace channel (internally synchronised; disabled = one atomic
    /// flag check per hook).
    tracer: Tracer,
    book: Mutex<StatsInner>,
}

/// Cheaply cloneable handle to a shared set of I/O counters.
///
/// Thread-safe (`Send + Sync`) and **lock-free on the hot path**: the
/// counters are per-field relaxed atomics, so worker threads of a parallel
/// sort charge into the same totals without ever contending on a lock.
/// Phases are tracked per thread (each thread has its own LIFO stack)
/// behind a mutex that is only taken at phase boundaries; under concurrency
/// a phase's delta includes I/Os charged by other threads while it was
/// open, so per-phase attribution is exact only for single-threaded
/// sections. Global counters are always exact; a [`IoStats::snapshot`]
/// taken while other threads are mid-charge may be skewed by the I/Os in
/// flight at that instant.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<StatsShared>,
}

impl IoStats {
    /// Fresh, zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, StatsInner> {
        self.inner.book.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The trace channel shared with the owning context.
    pub(crate) fn tracer(&self) -> Tracer {
        self.inner.tracer.clone()
    }

    /// Whether accounting is currently paused (oracle/verification scans).
    /// Trace point emission respects this too.
    #[inline]
    pub(crate) fn is_paused(&self) -> bool {
        self.inner.paused.load(Ordering::Relaxed) > 0
    }

    #[inline]
    pub(crate) fn record_read_block(&self, file: u64, block: u64, bytes: u64) {
        if self.is_paused() {
            return;
        }
        self.inner.counters.reads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_read
            .fetch_add(bytes, Ordering::Relaxed);
        self.inner.tracer.note_access(IoOp::Read, file, block);
    }

    #[inline]
    pub(crate) fn record_write_block(&self, file: u64, block: u64, bytes: u64) {
        if self.is_paused() {
            return;
        }
        self.inner.counters.writes.fetch_add(1, Ordering::Relaxed);
        self.inner
            .counters
            .bytes_written
            .fetch_add(bytes, Ordering::Relaxed);
        self.inner.tracer.note_access(IoOp::Write, file, block);
    }

    /// Charge one physical (device-level) block read. Called by the device
    /// layer on every actual transfer; a block-cache hit skips it.
    #[inline]
    pub(crate) fn record_physical_read(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .physical_reads
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one physical (device-level) block write. The cache is
    /// write-through, so every logical write is also physical.
    #[inline]
    pub(crate) fn record_physical_write(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .physical_writes
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one buffer-pool hit (a logical read served without a device
    /// transfer).
    #[inline]
    pub(crate) fn record_cache_hit(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .cache_hits
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one buffer-pool miss (the lookup went to the device and the
    /// frame was populated).
    #[inline]
    pub(crate) fn record_cache_miss(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .cache_misses
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one retried device attempt (see [`Counters::retries`]).
    #[inline]
    pub(crate) fn record_retry(&self) {
        if !self.is_paused() {
            self.inner.counters.retries.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one checksum-verification failure.
    #[inline]
    pub(crate) fn record_corrupt_read(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .corrupt_reads
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one checkpoint-journal commit. Journal commits are metadata
    /// writes outside the block-I/O model, so `total_ios` is unaffected.
    #[inline]
    pub fn record_journal_write(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .journal_writes
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge `n` block I/Os as *rework*: I/Os spent re-executing a work
    /// unit that a crash interrupted. Called by recoverable algorithms when
    /// a resumed run redoes its in-flight unit; the I/Os themselves are
    /// already in `reads`/`writes`. Emits a `work_unit_redo` trace point
    /// attributed to the innermost open span.
    #[inline]
    pub fn record_redone_ios(&self, n: u64) {
        if !self.is_paused() {
            self.inner
                .counters
                .redone_ios
                .fetch_add(n, Ordering::Relaxed);
            self.inner.tracer.point(PointKind::WorkUnitRedo { ios: n });
        }
    }

    /// Charge one shed query: the serving layer dropped it at admission
    /// because its deadline had already expired (see
    /// [`Counters::shed_queries`]).
    #[inline]
    pub fn record_shed_query(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .shed_queries
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one circuit-breaker trip: a served dataset entered the
    /// fail-fast `Unhealthy` state (see [`Counters::breaker_trips`]).
    #[inline]
    pub fn record_breaker_trip(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .breaker_trips
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one degraded answer: a query answered approximately from a
    /// splitter skeleton at zero I/O (see [`Counters::degraded_answers`]).
    #[inline]
    pub fn record_degraded_answer(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .degraded_answers
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one strict-mode memory denial: a typed
    /// [`crate::EmError::MemoryExceeded`] handed back instead of a panic.
    #[inline]
    pub fn record_mem_denial(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .mem_denials
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one governor budget squeeze (a shrink delivered through
    /// `EmContext::set_mem_budget`).
    #[inline]
    pub fn record_mem_reclaim(&self) {
        if !self.is_paused() {
            self.inner
                .counters
                .mem_reclaims
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge `n` key comparisons. Algorithms that want comparison counts
    /// (e.g. for checking the `Θ(N lg K)` internal-memory bound) call this.
    #[inline]
    pub fn record_comparisons(&self, n: u64) {
        if !self.is_paused() {
            self.inner
                .counters
                .comparisons
                .fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Charge `n` synthetic block reads. Used by top-level entry points to
    /// account for consuming caller-supplied rank lists (see DESIGN.md,
    /// model-fidelity notes).
    pub fn charge_reads(&self, n: u64) {
        if !self.is_paused() {
            self.inner.counters.reads.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> Counters {
        self.inner.counters.load()
    }

    /// Reset all counters and phase records to zero. Debug-asserts that no
    /// phase is open — resetting mid-phase would misattribute the rest of
    /// that phase's I/Os.
    pub fn reset(&self) {
        let mut g = self.lock();
        debug_assert!(
            g.open_scope_names().is_empty(),
            "IoStats::reset inside an open phase ({:?})",
            g.open_scope_names()
        );
        self.inner.counters.zero();
        g.scope_stacks.clear();
        g.phase_totals.clear();
    }

    /// Run `f` without recording any I/O. Used for workload materialisation
    /// and verification scans that are not part of the algorithm under
    /// measurement. Pauses nest.
    pub fn paused<R>(&self, f: impl FnOnce() -> R) -> R {
        self.inner.paused.fetch_add(1, Ordering::Relaxed);
        let _guard = PauseGuard { stats: self };
        f()
    }

    /// Begin a named phase. Phases nest; each `end_phase` closes the most
    /// recent open phase and adds its delta to that phase's running total.
    /// Prefer [`IoStats::phase_guard`], which closes on early return and
    /// unwinding.
    pub fn begin_phase(&self, name: impl Into<String>) {
        self.push_scope(name.into(), true, None);
    }

    fn push_scope(&self, name: String, charge: bool, parent: Option<u64>) {
        let start = self.snapshot();
        let mut g = self.lock();
        // The tracer has its own interior state, independent of ours.
        let span = self.inner.tracer.span_open_under(&name, parent);
        g.stack().push(Scope {
            name,
            start,
            span,
            charge,
        });
    }

    /// Trace span id of the calling thread's innermost open phase, or 0 if
    /// none is open (or tracing is disabled). Capture this on a coordinating
    /// thread and pass it to [`IoStats::trace_span_under`] from workers so
    /// their spans nest under the coordinating phase.
    pub fn current_span_id(&self) -> u64 {
        self.lock().stack().last().map(|s| s.span).unwrap_or(0)
    }

    /// End the innermost open phase *of the calling thread*, returning its
    /// delta. Returns `None` if this thread has no phase open.
    pub fn end_phase(&self) -> Option<Counters> {
        let now = self.snapshot();
        let mut g = self.lock();
        let scope = g.stack().pop();
        let tid = std::thread::current().id();
        if g.scope_stacks.get(&tid).is_some_and(|s| s.is_empty()) {
            g.scope_stacks.remove(&tid);
        }
        let scope = scope?;
        let delta = now.since(&scope.start);
        if scope.charge {
            let slot = g.phase_totals.entry(scope.name).or_default();
            *slot = slot.plus(&delta);
        }
        self.inner.tracer.span_close(scope.span, &delta);
        Some(delta)
    }

    /// Begin a named phase and return a guard that ends it on drop — the
    /// `?`-safe form of [`IoStats::begin_phase`]: the phase closes (and its
    /// trace span stays balanced) on early return, error propagation, and
    /// unwinding.
    pub fn phase_guard(&self, name: impl Into<String>) -> PhaseGuard<'_> {
        self.begin_phase(name);
        PhaseGuard {
            stats: self,
            done: false,
        }
    }

    /// Open a *trace-only* span: it appears in the span tree with its exact
    /// counter delta but is **not** added to [`IoStats::phase_totals`], so
    /// fine-grained structure (work units, recursion levels) can be traced
    /// without double-counting the flat per-phase totals. The name closure
    /// is only invoked when tracing is enabled; when disabled the returned
    /// guard is inert and the cost is one flag check.
    pub fn trace_span(&self, name: impl FnOnce() -> String) -> TraceSpanGuard<'_> {
        self.trace_span_impl(None, name)
    }

    /// Like [`IoStats::trace_span`] but with an explicit parent span id
    /// (from [`IoStats::current_span_id`] on the coordinating thread). A
    /// `parent` of 0 falls back to automatic parent resolution. Use from
    /// worker threads so their spans attach under the phase that charges
    /// their I/O rather than whatever another thread has open.
    pub fn trace_span_under(
        &self,
        parent: u64,
        name: impl FnOnce() -> String,
    ) -> TraceSpanGuard<'_> {
        let parent = (parent != 0).then_some(parent);
        self.trace_span_impl(parent, name)
    }

    fn trace_span_impl(
        &self,
        parent: Option<u64>,
        name: impl FnOnce() -> String,
    ) -> TraceSpanGuard<'_> {
        if !self.inner.tracer.is_enabled() {
            return TraceSpanGuard {
                stats: self,
                active: false,
            };
        }
        self.push_scope(name(), false, parent);
        TraceSpanGuard {
            stats: self,
            active: true,
        }
    }

    /// Run `f` inside a named phase. The phase closes even if `f` panics.
    pub fn phase<R>(&self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let _guard = self.phase_guard(name);
        f()
    }

    /// Accumulated totals per phase name, in name order.
    pub fn phase_totals(&self) -> Vec<(String, Counters)> {
        self.lock()
            .phase_totals
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// RAII guard for a charged phase; see [`IoStats::phase_guard`].
#[must_use = "dropping the guard immediately ends the phase"]
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    stats: &'a IoStats,
    done: bool,
}

impl PhaseGuard<'_> {
    /// End the phase now, returning its delta.
    pub fn end(mut self) -> Option<Counters> {
        self.done = true;
        self.stats.end_phase()
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.stats.end_phase();
        }
    }
}

/// RAII guard for a trace-only span; see [`IoStats::trace_span`].
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct TraceSpanGuard<'a> {
    stats: &'a IoStats,
    active: bool,
}

impl Drop for TraceSpanGuard<'_> {
    fn drop(&mut self) {
        if self.active {
            self.stats.end_phase();
        }
    }
}

struct PauseGuard<'a> {
    stats: &'a IoStats,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.stats.inner.paused.fetch_sub(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let s = IoStats::new();
        s.record_read_block(0, 0, 128);
        s.record_read_block(0, 1, 128);
        s.record_write_block(0, 0, 64);
        let c = s.snapshot();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.total_ios(), 3);
        assert_eq!(c.bytes_read, 256);
        assert_eq!(c.bytes_written, 64);
    }

    #[test]
    fn since_diffs() {
        let s = IoStats::new();
        s.record_read_block(0, 0, 0);
        let snap = s.snapshot();
        s.record_read_block(0, 1, 0);
        s.record_write_block(0, 0, 0);
        let d = s.snapshot().since(&snap);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn plus_saturates() {
        let a = Counters {
            reads: u64::MAX - 1,
            comparisons: u64::MAX,
            ..Counters::default()
        };
        let b = Counters {
            reads: 5,
            comparisons: 5,
            writes: 1,
            ..Counters::default()
        };
        let c = a.plus(&b);
        assert_eq!(c.reads, u64::MAX);
        assert_eq!(c.comparisons, u64::MAX);
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn display_includes_bytes_and_fault_counters() {
        let c = Counters {
            reads: 2,
            writes: 1,
            bytes_read: 3 * 1024 * 1024,
            bytes_written: 512,
            ..Counters::default()
        };
        let s = c.to_string();
        assert_eq!(s, "3 I/Os (2 reads, 1 writes, 3.0 MiB read, 512 B written)");
        let c2 = Counters {
            retries: 4,
            journal_writes: 2,
            redone_ios: 9,
            ..c
        };
        let s2 = c2.to_string();
        assert!(s2.contains("4 retries"), "{s2}");
        assert!(s2.contains("2 journal commits"), "{s2}");
        assert!(s2.contains("9 redone I/Os"), "{s2}");
    }

    #[test]
    fn paused_suppresses_counting() {
        let s = IoStats::new();
        s.paused(|| {
            s.record_read_block(0, 0, 0);
            s.record_write_block(0, 0, 0);
            // nesting
            s.paused(|| s.record_read_block(0, 1, 0));
            s.record_read_block(0, 2, 0);
        });
        s.record_read_block(0, 3, 0);
        assert_eq!(s.snapshot().total_ios(), 1);
    }

    #[test]
    fn phases_accumulate() {
        let s = IoStats::new();
        s.phase("scan", || {
            s.record_read_block(0, 0, 0);
            s.record_read_block(0, 1, 0);
        });
        s.phase("scan", || s.record_read_block(0, 2, 0));
        s.phase("merge", || s.record_write_block(1, 0, 0));
        let totals = s.phase_totals();
        assert_eq!(totals.len(), 2);
        let scan = totals.iter().find(|(n, _)| n == "scan").unwrap();
        assert_eq!(scan.1.reads, 3);
        let merge = totals.iter().find(|(n, _)| n == "merge").unwrap();
        assert_eq!(merge.1.writes, 1);
    }

    #[test]
    fn nested_phases_charge_both() {
        let s = IoStats::new();
        s.begin_phase("outer");
        s.record_read_block(0, 0, 0);
        s.begin_phase("inner");
        s.record_read_block(0, 1, 0);
        let inner = s.end_phase().unwrap();
        let outer = s.end_phase().unwrap();
        assert_eq!(inner.reads, 1);
        assert_eq!(outer.reads, 2);
        assert!(s.end_phase().is_none());
    }

    #[test]
    fn phase_guard_closes_on_early_return() {
        let s = IoStats::new();
        let attempt = |fail: bool| -> Result<(), ()> {
            let _g = s.phase_guard("guarded");
            s.record_read_block(0, 0, 0);
            if fail {
                return Err(());
            }
            s.record_read_block(0, 1, 0);
            Ok(())
        };
        attempt(true).unwrap_err();
        attempt(false).unwrap();
        let totals = s.phase_totals();
        let g = totals.iter().find(|(n, _)| n == "guarded").unwrap();
        // Both attempts attributed, including the early-returning one.
        assert_eq!(g.1.reads, 3);
        assert!(s.end_phase().is_none(), "guards left no phase open");
    }

    #[test]
    fn phase_guard_end_returns_delta() {
        let s = IoStats::new();
        let g = s.phase_guard("p");
        s.record_write_block(0, 0, 0);
        let delta = g.end().unwrap();
        assert_eq!(delta.writes, 1);
    }

    #[test]
    fn trace_span_disabled_is_inert_and_charges_nothing() {
        let s = IoStats::new();
        {
            let _t = s.trace_span(|| unreachable!("name closure must not run when disabled"));
            s.record_read_block(0, 0, 0);
        }
        assert!(s.phase_totals().is_empty());
        assert_eq!(s.snapshot().reads, 1);
    }

    #[test]
    fn trace_span_does_not_pollute_phase_totals() {
        use crate::trace::RingSink;
        let s = IoStats::new();
        let ring = RingSink::new(0);
        s.tracer().install(Box::new(ring.clone()), 0, 0);
        {
            let _p = s.phase_guard("charged");
            let _t = s.trace_span(|| "unit/0".into());
            s.record_read_block(0, 0, 0);
        }
        s.tracer().finish();
        let totals = s.phase_totals();
        assert_eq!(totals.len(), 1, "only the charged phase has a total");
        assert_eq!(totals[0].0, "charged");
        // ...but both appear as spans in the trace.
        let names: Vec<String> = ring
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::trace::TraceEvent::SpanOpen { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["charged".to_string(), "unit/0".to_string()]);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_read_block(0, 0, 8);
        s.phase("p", || s.record_write_block(0, 0, 8));
        s.reset();
        assert_eq!(s.snapshot(), Counters::default());
        assert!(s.phase_totals().is_empty());
    }

    #[test]
    fn retries_and_corrupt_reads_tracked() {
        let s = IoStats::new();
        s.record_retry();
        s.record_retry();
        s.record_corrupt_read();
        s.paused(|| {
            s.record_retry();
            s.record_corrupt_read();
        });
        let c = s.snapshot();
        assert_eq!(c.retries, 2);
        assert_eq!(c.corrupt_reads, 1);
        // Retries are not block I/Os.
        assert_eq!(c.total_ios(), 0);
    }

    #[test]
    fn journal_and_redo_counters_tracked() {
        let s = IoStats::new();
        s.record_journal_write();
        s.record_redone_ios(7);
        s.paused(|| {
            s.record_journal_write();
            s.record_redone_ios(5);
        });
        let c = s.snapshot();
        assert_eq!(c.journal_writes, 1);
        assert_eq!(c.redone_ios, 7);
        // Neither counter is a block transfer.
        assert_eq!(c.total_ios(), 0);
        let d = s.snapshot().since(&Counters::default());
        assert_eq!(d.journal_writes, 1);
        assert_eq!(d.redone_ios, 7);
    }

    #[test]
    fn comparisons_tracked() {
        let s = IoStats::new();
        s.record_comparisons(10);
        s.paused(|| s.record_comparisons(5));
        assert_eq!(s.snapshot().comparisons, 10);
    }

    #[test]
    fn physical_and_cache_counters_tracked() {
        let s = IoStats::new();
        s.record_read_block(0, 0, 0);
        s.record_physical_read();
        s.record_cache_miss();
        s.record_read_block(0, 0, 0);
        s.record_cache_hit();
        s.record_write_block(0, 1, 0);
        s.record_physical_write();
        let c = s.snapshot();
        assert_eq!(c.logical_ios(), c.total_ios());
        assert_eq!(c.logical_ios(), 3);
        assert_eq!(c.physical_ios(), 2);
        assert_eq!(c.cache_hits, 1);
        assert_eq!(c.cache_misses, 1);
        assert!((c.cache_hit_rate() - 0.5).abs() < 1e-12);
        // Cache counters never feed the model-charged totals.
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn cache_hit_rate_zero_when_disengaged() {
        let c = Counters::default();
        assert_eq!(c.cache_hit_rate(), 0.0);
    }

    #[test]
    fn counters_shared_across_threads() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..250 {
                        s.record_read_block(t, i, 8);
                        s.record_comparisons(2);
                    }
                });
            }
        });
        let c = s.snapshot();
        assert_eq!(c.reads, 1000);
        assert_eq!(c.comparisons, 2000);
        assert_eq!(c.bytes_read, 8000);
    }

    #[test]
    fn phase_stacks_are_per_thread() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    let _g = s.phase_guard("worker");
                    s.record_read_block(0, 0, 0);
                    // Nested phases stay LIFO within this thread even while
                    // other threads open/close their own.
                    s.phase("inner", || {
                        s.record_write_block(0, 0, 0);
                    });
                });
            }
        });
        // All scopes closed; totals conserve the global counters.
        assert!(s.end_phase().is_none());
        let c = s.snapshot();
        assert_eq!(c.reads, 4);
        assert_eq!(c.writes, 4);
    }

    #[test]
    fn iostats_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IoStats>();
        assert_send_sync::<Counters>();
    }
}
