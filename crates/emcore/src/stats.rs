//! I/O accounting.
//!
//! Every block transfer performed through an [`crate::EmFile`] is charged to
//! the [`IoStats`] handle of the owning [`crate::EmContext`]. Counters can be
//! snapshotted and diffed, and named *phases* attribute I/Os to
//! sub-algorithms (e.g. "sample", "distribute", "base-case"). Phases double
//! as trace spans: when a [`crate::TraceSink`] is installed on the context,
//! every phase open/close is emitted as a span event carrying its exact
//! counter delta (see [`crate::trace`]).

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use crate::fault::IoOp;
use crate::trace::{PointKind, Tracer};

/// A plain set of counters. Snapshots and phase totals use this type.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Counters {
    /// Block reads.
    pub reads: u64,
    /// Block writes.
    pub writes: u64,
    /// Key comparisons (only charged by algorithms that opt in).
    pub comparisons: u64,
    /// Bytes read from the file backend (0 on the memory backend).
    pub bytes_read: u64,
    /// Bytes written to the file backend (0 on the memory backend).
    pub bytes_written: u64,
    /// Device attempts that failed and were retried under the context's
    /// [`crate::RetryPolicy`]. Successful attempts are charged to
    /// `reads`/`writes` as usual, so with an empty fault plan this is 0 and
    /// every other counter is unchanged.
    pub retries: u64,
    /// Block reads that failed checksum verification (each such attempt also
    /// counts toward `retries` if it was retried).
    pub corrupt_reads: u64,
    /// Checkpoint-journal commits (see [`crate::Journal`]). Journal commits
    /// are host-side metadata writes, not block transfers, so they are *not*
    /// part of [`Counters::total_ios`].
    pub journal_writes: u64,
    /// Block I/Os spent *re-executing* a work unit that a crash interrupted
    /// (charged by recoverable algorithms when they redo an in-flight unit
    /// on resume). These I/Os are also counted in `reads`/`writes`; this
    /// counter isolates the rework overhead.
    pub redone_ios: u64,
}

impl Counters {
    /// Total block I/Os: reads + writes.
    #[inline]
    pub fn total_ios(&self) -> u64 {
        self.reads + self.writes
    }

    /// Component-wise difference `self - earlier`. Saturates at zero so that
    /// diffing against a later snapshot does not panic in release builds.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            comparisons: self.comparisons.saturating_sub(earlier.comparisons),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            retries: self.retries.saturating_sub(earlier.retries),
            corrupt_reads: self.corrupt_reads.saturating_sub(earlier.corrupt_reads),
            journal_writes: self.journal_writes.saturating_sub(earlier.journal_writes),
            redone_ios: self.redone_ios.saturating_sub(earlier.redone_ios),
        }
    }

    /// Component-wise sum. Saturates like [`Counters::since`] so that
    /// accumulating totals over a long campaign can never overflow-panic in
    /// debug builds.
    pub fn plus(&self, other: &Counters) -> Counters {
        Counters {
            reads: self.reads.saturating_add(other.reads),
            writes: self.writes.saturating_add(other.writes),
            comparisons: self.comparisons.saturating_add(other.comparisons),
            bytes_read: self.bytes_read.saturating_add(other.bytes_read),
            bytes_written: self.bytes_written.saturating_add(other.bytes_written),
            retries: self.retries.saturating_add(other.retries),
            corrupt_reads: self.corrupt_reads.saturating_add(other.corrupt_reads),
            journal_writes: self.journal_writes.saturating_add(other.journal_writes),
            redone_ios: self.redone_ios.saturating_add(other.redone_ios),
        }
    }
}

/// Render a byte count with a binary-unit suffix ("3.2 MiB").
fn fmt_bytes(f: &mut std::fmt::Formatter<'_>, bytes: u64) -> std::fmt::Result {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        write!(f, "{bytes} B")
    } else {
        write!(f, "{v:.1} {}", UNITS[unit])
    }
}

impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} I/Os ({} reads, {} writes, ",
            self.total_ios(),
            self.reads,
            self.writes
        )?;
        fmt_bytes(f, self.bytes_read)?;
        write!(f, " read, ")?;
        fmt_bytes(f, self.bytes_written)?;
        write!(f, " written)")?;
        if self.retries != 0 {
            write!(f, ", {} retries", self.retries)?;
        }
        if self.corrupt_reads != 0 {
            write!(f, ", {} corrupt reads", self.corrupt_reads)?;
        }
        if self.journal_writes != 0 {
            write!(f, ", {} journal commits", self.journal_writes)?;
        }
        if self.redone_ios != 0 {
            write!(f, ", {} redone I/Os", self.redone_ios)?;
        }
        Ok(())
    }
}

/// One open phase/span on the stack.
#[derive(Debug)]
struct Scope {
    name: String,
    start: Counters,
    /// Trace span id (0 when tracing was disabled at open time).
    span: u64,
    /// Whether the delta is added to `phase_totals` on close. Trace-only
    /// spans (work units, recursion levels) set this false so they appear
    /// in the span tree without double-counting in the flat totals.
    charge: bool,
}

#[derive(Debug, Default)]
struct StatsInner {
    counters: Counters,
    paused: u32,
    scope_stack: Vec<Scope>,
    phase_totals: BTreeMap<String, Counters>,
    tracer: Tracer,
}

impl Drop for StatsInner {
    fn drop(&mut self) {
        // An open phase at teardown means a begin_phase without a matching
        // end_phase somewhere — attribution was silently dropped. Only
        // assert when not already unwinding, to avoid a double panic.
        if !std::thread::panicking() {
            debug_assert!(
                self.scope_stack.is_empty(),
                "IoStats dropped with {} open phase(s): {:?} — use phase_guard()",
                self.scope_stack.len(),
                self.scope_stack
                    .iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
            );
        }
    }
}

/// Cheaply cloneable handle to a shared set of I/O counters.
///
/// The runtime is single-threaded (the EM model is sequential), so interior
/// mutability via `RefCell` suffices and keeps the hot counter increments
/// branch-cheap.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Rc<RefCell<StatsInner>>,
}

impl IoStats {
    /// Fresh, zeroed stats.
    pub fn new() -> Self {
        Self::default()
    }

    /// The trace channel shared with the owning context.
    pub(crate) fn tracer(&self) -> Tracer {
        self.inner.borrow().tracer.clone()
    }

    /// Whether accounting is currently paused (oracle/verification scans).
    /// Trace point emission respects this too.
    #[inline]
    pub(crate) fn is_paused(&self) -> bool {
        self.inner.borrow().paused > 0
    }

    #[inline]
    pub(crate) fn record_read_block(&self, file: u64, block: u64, bytes: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.reads += 1;
            g.counters.bytes_read += bytes;
            g.tracer.note_access(IoOp::Read, file, block);
        }
    }

    #[inline]
    pub(crate) fn record_write_block(&self, file: u64, block: u64, bytes: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.writes += 1;
            g.counters.bytes_written += bytes;
            g.tracer.note_access(IoOp::Write, file, block);
        }
    }

    /// Charge one retried device attempt (see [`Counters::retries`]).
    #[inline]
    pub(crate) fn record_retry(&self) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.retries += 1;
        }
    }

    /// Charge one checksum-verification failure.
    #[inline]
    pub(crate) fn record_corrupt_read(&self) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.corrupt_reads += 1;
        }
    }

    /// Charge one checkpoint-journal commit. Journal commits are metadata
    /// writes outside the block-I/O model, so `total_ios` is unaffected.
    #[inline]
    pub fn record_journal_write(&self) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.journal_writes += 1;
        }
    }

    /// Charge `n` block I/Os as *rework*: I/Os spent re-executing a work
    /// unit that a crash interrupted. Called by recoverable algorithms when
    /// a resumed run redoes its in-flight unit; the I/Os themselves are
    /// already in `reads`/`writes`. Emits a `work_unit_redo` trace point
    /// attributed to the innermost open span.
    #[inline]
    pub fn record_redone_ios(&self, n: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.redone_ios += n;
            g.tracer.point(PointKind::WorkUnitRedo { ios: n });
        }
    }

    /// Charge `n` key comparisons. Algorithms that want comparison counts
    /// (e.g. for checking the `Θ(N lg K)` internal-memory bound) call this.
    #[inline]
    pub fn record_comparisons(&self, n: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.comparisons += n;
        }
    }

    /// Charge `n` synthetic block reads. Used by top-level entry points to
    /// account for consuming caller-supplied rank lists (see DESIGN.md,
    /// model-fidelity notes).
    pub fn charge_reads(&self, n: u64) {
        let mut g = self.inner.borrow_mut();
        if g.paused == 0 {
            g.counters.reads += n;
        }
    }

    /// Current counter values.
    pub fn snapshot(&self) -> Counters {
        self.inner.borrow().counters
    }

    /// Reset all counters and phase records to zero. Debug-asserts that no
    /// phase is open — resetting mid-phase would misattribute the rest of
    /// that phase's I/Os.
    pub fn reset(&self) {
        let mut g = self.inner.borrow_mut();
        debug_assert!(
            g.scope_stack.is_empty(),
            "IoStats::reset inside an open phase ({:?})",
            g.scope_stack
                .iter()
                .map(|s| s.name.as_str())
                .collect::<Vec<_>>()
        );
        g.counters = Counters::default();
        g.scope_stack.clear();
        g.phase_totals.clear();
    }

    /// Run `f` without recording any I/O. Used for workload materialisation
    /// and verification scans that are not part of the algorithm under
    /// measurement. Pauses nest.
    pub fn paused<R>(&self, f: impl FnOnce() -> R) -> R {
        self.inner.borrow_mut().paused += 1;
        let _guard = PauseGuard { stats: self };
        f()
    }

    /// Begin a named phase. Phases nest; each `end_phase` closes the most
    /// recent open phase and adds its delta to that phase's running total.
    /// Prefer [`IoStats::phase_guard`], which closes on early return and
    /// unwinding.
    pub fn begin_phase(&self, name: impl Into<String>) {
        self.push_scope(name.into(), true);
    }

    fn push_scope(&self, name: String, charge: bool) {
        let mut g = self.inner.borrow_mut();
        let start = g.counters;
        // The tracer has its own interior state, independent of ours.
        let span = g.tracer.span_open(&name);
        g.scope_stack.push(Scope {
            name,
            start,
            span,
            charge,
        });
    }

    /// End the innermost open phase, returning its delta. Returns `None` if
    /// no phase is open.
    pub fn end_phase(&self) -> Option<Counters> {
        let mut g = self.inner.borrow_mut();
        let scope = g.scope_stack.pop()?;
        let delta = g.counters.since(&scope.start);
        if scope.charge {
            let slot = g.phase_totals.entry(scope.name).or_default();
            *slot = slot.plus(&delta);
        }
        g.tracer.span_close(scope.span, &delta);
        Some(delta)
    }

    /// Begin a named phase and return a guard that ends it on drop — the
    /// `?`-safe form of [`IoStats::begin_phase`]: the phase closes (and its
    /// trace span stays balanced) on early return, error propagation, and
    /// unwinding.
    pub fn phase_guard(&self, name: impl Into<String>) -> PhaseGuard<'_> {
        self.begin_phase(name);
        PhaseGuard {
            stats: self,
            done: false,
        }
    }

    /// Open a *trace-only* span: it appears in the span tree with its exact
    /// counter delta but is **not** added to [`IoStats::phase_totals`], so
    /// fine-grained structure (work units, recursion levels) can be traced
    /// without double-counting the flat per-phase totals. The name closure
    /// is only invoked when tracing is enabled; when disabled the returned
    /// guard is inert and the cost is one flag check.
    pub fn trace_span(&self, name: impl FnOnce() -> String) -> TraceSpanGuard<'_> {
        if !self.inner.borrow().tracer.is_enabled() {
            return TraceSpanGuard {
                stats: self,
                active: false,
            };
        }
        self.push_scope(name(), false);
        TraceSpanGuard {
            stats: self,
            active: true,
        }
    }

    /// Run `f` inside a named phase. The phase closes even if `f` panics.
    pub fn phase<R>(&self, name: impl Into<String>, f: impl FnOnce() -> R) -> R {
        let _guard = self.phase_guard(name);
        f()
    }

    /// Accumulated totals per phase name, in name order.
    pub fn phase_totals(&self) -> Vec<(String, Counters)> {
        self.inner
            .borrow()
            .phase_totals
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }
}

/// RAII guard for a charged phase; see [`IoStats::phase_guard`].
#[must_use = "dropping the guard immediately ends the phase"]
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    stats: &'a IoStats,
    done: bool,
}

impl PhaseGuard<'_> {
    /// End the phase now, returning its delta.
    pub fn end(mut self) -> Option<Counters> {
        self.done = true;
        self.stats.end_phase()
    }
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        if !self.done {
            self.stats.end_phase();
        }
    }
}

/// RAII guard for a trace-only span; see [`IoStats::trace_span`].
#[must_use = "dropping the guard immediately closes the span"]
#[derive(Debug)]
pub struct TraceSpanGuard<'a> {
    stats: &'a IoStats,
    active: bool,
}

impl Drop for TraceSpanGuard<'_> {
    fn drop(&mut self) {
        if self.active {
            self.stats.end_phase();
        }
    }
}

struct PauseGuard<'a> {
    stats: &'a IoStats,
}

impl Drop for PauseGuard<'_> {
    fn drop(&mut self) {
        self.stats.inner.borrow_mut().paused -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_reads_and_writes() {
        let s = IoStats::new();
        s.record_read_block(0, 0, 128);
        s.record_read_block(0, 1, 128);
        s.record_write_block(0, 0, 64);
        let c = s.snapshot();
        assert_eq!(c.reads, 2);
        assert_eq!(c.writes, 1);
        assert_eq!(c.total_ios(), 3);
        assert_eq!(c.bytes_read, 256);
        assert_eq!(c.bytes_written, 64);
    }

    #[test]
    fn since_diffs() {
        let s = IoStats::new();
        s.record_read_block(0, 0, 0);
        let snap = s.snapshot();
        s.record_read_block(0, 1, 0);
        s.record_write_block(0, 0, 0);
        let d = s.snapshot().since(&snap);
        assert_eq!(d.reads, 1);
        assert_eq!(d.writes, 1);
    }

    #[test]
    fn plus_saturates() {
        let a = Counters {
            reads: u64::MAX - 1,
            comparisons: u64::MAX,
            ..Counters::default()
        };
        let b = Counters {
            reads: 5,
            comparisons: 5,
            writes: 1,
            ..Counters::default()
        };
        let c = a.plus(&b);
        assert_eq!(c.reads, u64::MAX);
        assert_eq!(c.comparisons, u64::MAX);
        assert_eq!(c.writes, 1);
    }

    #[test]
    fn display_includes_bytes_and_fault_counters() {
        let c = Counters {
            reads: 2,
            writes: 1,
            bytes_read: 3 * 1024 * 1024,
            bytes_written: 512,
            ..Counters::default()
        };
        let s = c.to_string();
        assert_eq!(s, "3 I/Os (2 reads, 1 writes, 3.0 MiB read, 512 B written)");
        let c2 = Counters {
            retries: 4,
            journal_writes: 2,
            redone_ios: 9,
            ..c
        };
        let s2 = c2.to_string();
        assert!(s2.contains("4 retries"), "{s2}");
        assert!(s2.contains("2 journal commits"), "{s2}");
        assert!(s2.contains("9 redone I/Os"), "{s2}");
    }

    #[test]
    fn paused_suppresses_counting() {
        let s = IoStats::new();
        s.paused(|| {
            s.record_read_block(0, 0, 0);
            s.record_write_block(0, 0, 0);
            // nesting
            s.paused(|| s.record_read_block(0, 1, 0));
            s.record_read_block(0, 2, 0);
        });
        s.record_read_block(0, 3, 0);
        assert_eq!(s.snapshot().total_ios(), 1);
    }

    #[test]
    fn phases_accumulate() {
        let s = IoStats::new();
        s.phase("scan", || {
            s.record_read_block(0, 0, 0);
            s.record_read_block(0, 1, 0);
        });
        s.phase("scan", || s.record_read_block(0, 2, 0));
        s.phase("merge", || s.record_write_block(1, 0, 0));
        let totals = s.phase_totals();
        assert_eq!(totals.len(), 2);
        let scan = totals.iter().find(|(n, _)| n == "scan").unwrap();
        assert_eq!(scan.1.reads, 3);
        let merge = totals.iter().find(|(n, _)| n == "merge").unwrap();
        assert_eq!(merge.1.writes, 1);
    }

    #[test]
    fn nested_phases_charge_both() {
        let s = IoStats::new();
        s.begin_phase("outer");
        s.record_read_block(0, 0, 0);
        s.begin_phase("inner");
        s.record_read_block(0, 1, 0);
        let inner = s.end_phase().unwrap();
        let outer = s.end_phase().unwrap();
        assert_eq!(inner.reads, 1);
        assert_eq!(outer.reads, 2);
        assert!(s.end_phase().is_none());
    }

    #[test]
    fn phase_guard_closes_on_early_return() {
        let s = IoStats::new();
        let attempt = |fail: bool| -> Result<(), ()> {
            let _g = s.phase_guard("guarded");
            s.record_read_block(0, 0, 0);
            if fail {
                return Err(());
            }
            s.record_read_block(0, 1, 0);
            Ok(())
        };
        attempt(true).unwrap_err();
        attempt(false).unwrap();
        let totals = s.phase_totals();
        let g = totals.iter().find(|(n, _)| n == "guarded").unwrap();
        // Both attempts attributed, including the early-returning one.
        assert_eq!(g.1.reads, 3);
        assert!(s.end_phase().is_none(), "guards left no phase open");
    }

    #[test]
    fn phase_guard_end_returns_delta() {
        let s = IoStats::new();
        let g = s.phase_guard("p");
        s.record_write_block(0, 0, 0);
        let delta = g.end().unwrap();
        assert_eq!(delta.writes, 1);
    }

    #[test]
    fn trace_span_disabled_is_inert_and_charges_nothing() {
        let s = IoStats::new();
        {
            let _t = s.trace_span(|| unreachable!("name closure must not run when disabled"));
            s.record_read_block(0, 0, 0);
        }
        assert!(s.phase_totals().is_empty());
        assert_eq!(s.snapshot().reads, 1);
    }

    #[test]
    fn trace_span_does_not_pollute_phase_totals() {
        use crate::trace::RingSink;
        let s = IoStats::new();
        let ring = RingSink::new(0);
        s.tracer().install(Box::new(ring.clone()), 0, 0);
        {
            let _p = s.phase_guard("charged");
            let _t = s.trace_span(|| "unit/0".into());
            s.record_read_block(0, 0, 0);
        }
        s.tracer().finish();
        let totals = s.phase_totals();
        assert_eq!(totals.len(), 1, "only the charged phase has a total");
        assert_eq!(totals[0].0, "charged");
        // ...but both appear as spans in the trace.
        let names: Vec<String> = ring
            .events()
            .iter()
            .filter_map(|e| match e {
                crate::trace::TraceEvent::SpanOpen { name, .. } => Some(name.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(names, vec!["charged".to_string(), "unit/0".to_string()]);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_read_block(0, 0, 8);
        s.phase("p", || s.record_write_block(0, 0, 8));
        s.reset();
        assert_eq!(s.snapshot(), Counters::default());
        assert!(s.phase_totals().is_empty());
    }

    #[test]
    fn retries_and_corrupt_reads_tracked() {
        let s = IoStats::new();
        s.record_retry();
        s.record_retry();
        s.record_corrupt_read();
        s.paused(|| {
            s.record_retry();
            s.record_corrupt_read();
        });
        let c = s.snapshot();
        assert_eq!(c.retries, 2);
        assert_eq!(c.corrupt_reads, 1);
        // Retries are not block I/Os.
        assert_eq!(c.total_ios(), 0);
    }

    #[test]
    fn journal_and_redo_counters_tracked() {
        let s = IoStats::new();
        s.record_journal_write();
        s.record_redone_ios(7);
        s.paused(|| {
            s.record_journal_write();
            s.record_redone_ios(5);
        });
        let c = s.snapshot();
        assert_eq!(c.journal_writes, 1);
        assert_eq!(c.redone_ios, 7);
        // Neither counter is a block transfer.
        assert_eq!(c.total_ios(), 0);
        let d = s.snapshot().since(&Counters::default());
        assert_eq!(d.journal_writes, 1);
        assert_eq!(d.redone_ios, 7);
    }

    #[test]
    fn comparisons_tracked() {
        let s = IoStats::new();
        s.record_comparisons(10);
        s.paused(|| s.record_comparisons(5));
        assert_eq!(s.snapshot().comparisons, 10);
    }
}
