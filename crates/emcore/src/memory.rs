//! Internal-memory metering.
//!
//! The point of this module is to keep the algorithms honest with respect to
//! the EM model: every in-memory buffer that holds records (or `Θ(L)`-sized
//! bookkeeping arrays) is allocated through the context and charged against
//! the memory capacity `M`. Peak usage is recorded; in *strict* mode an
//! allocation that would push live usage above `M` fails with a typed
//! [`EmError::MemoryExceeded`] from [`MemoryTracker::try_charge`], which
//! turns a model violation into a recoverable result rather than a silently
//! wrong complexity measurement. The panicking [`MemoryTracker::charge`]
//! wrapper is kept for tests and for sites whose budget is proven by
//! construction.
//!
//! `M` is *dynamic*: [`MemoryTracker::set_capacity`] re-points the budget
//! mid-run (the memory governor's squeeze/restore path), and all capacity
//! reads are atomic so concurrent jobs observe the new budget at their next
//! allocation or phase boundary.

use crate::error::{EmError, Result};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct MemInner {
    current: AtomicUsize,
    peak: AtomicUsize,
    capacity: AtomicUsize,
    strict: bool,
}

/// Cheaply cloneable handle to the shared memory meter (units: words).
///
/// Thread-safe and lock-free: a meter shared between worker threads updates
/// `current`/`peak` with atomic read-modify-writes, so charges from
/// concurrent sorts never race and never contend on a lock.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    inner: Arc<MemInner>,
}

impl MemoryTracker {
    /// New tracker with capacity `m` words. `strict` decides whether
    /// violations panic (true) or are merely recorded in the peak (false).
    pub fn new(capacity: usize, strict: bool) -> Self {
        Self {
            inner: Arc::new(MemInner {
                current: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                capacity: AtomicUsize::new(capacity),
                strict,
            }),
        }
    }

    /// Charge `words` words, returning a guard that releases them on drop,
    /// or a typed [`EmError::MemoryExceeded`] in strict mode when the charge
    /// would push live usage above the (dynamic) capacity. A rejected charge
    /// is fully rolled back: it leaves `current` untouched and does *not*
    /// move the peak.
    pub fn try_charge(&self, words: usize, context: &str) -> Result<MemCharge> {
        let current = self
            .inner
            .current
            .fetch_add(words, Ordering::Relaxed)
            .saturating_add(words);
        let capacity = self.inner.capacity.load(Ordering::Relaxed);
        if self.inner.strict && current > capacity {
            self.release(words);
            return Err(EmError::MemoryExceeded {
                requested: current,
                capacity,
                context: format!("while allocating {words} words for {context}"),
            });
        }
        self.inner.peak.fetch_max(current, Ordering::Relaxed);
        Ok(MemCharge {
            tracker: self.clone(),
            words,
        })
    }

    /// Charge `words` words, returning a guard that releases them on drop.
    /// Thin wrapper over [`MemoryTracker::try_charge`] for tests and for
    /// sites whose fit is proven by construction.
    ///
    /// # Panics
    ///
    /// In strict mode, panics if the charge would exceed the capacity.
    pub fn charge(&self, words: usize, context: &str) -> MemCharge {
        match self.try_charge(words, context) {
            Ok(c) => c,
            Err(e) => panic!("EM {e}"), // memory-gate: allow (test-facing wrapper)
        }
    }

    /// Words currently live.
    pub fn current(&self) -> usize {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// Highest number of words ever live.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// The capacity `M` in words (a dynamic budget: see
    /// [`MemoryTracker::set_capacity`]).
    pub fn capacity(&self) -> usize {
        self.inner.capacity.load(Ordering::Relaxed)
    }

    /// Re-point the budget: the governor's squeeze/restore path. Shrinking
    /// below the live amount is allowed — existing charges stay valid and
    /// future strict charges fail until usage drains below the new `M`.
    pub fn set_capacity(&self, words: usize) {
        self.inner.capacity.store(words, Ordering::Relaxed);
    }

    /// Headroom left under the current budget (0 when over-committed).
    pub fn available(&self) -> usize {
        self.capacity().saturating_sub(self.current())
    }

    /// Whether violations panic.
    pub fn is_strict(&self) -> bool {
        self.inner.strict
    }

    /// Reset the peak to the current live amount (counters between phases).
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.current(), Ordering::Relaxed);
    }

    fn release(&self, words: usize) {
        // Saturating CAS loop rather than a plain fetch_sub so a (buggy)
        // double release clamps at zero instead of wrapping the gauge.
        let prev = self
            .inner
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                Some(c.saturating_sub(words))
            })
            .unwrap_or(0);
        debug_assert!(prev >= words, "memory release underflow");
    }
}

/// RAII guard for a memory charge; releases the words when dropped.
#[derive(Debug)]
pub struct MemCharge {
    tracker: MemoryTracker,
    words: usize,
}

impl MemCharge {
    /// The number of words held by this charge.
    pub fn words(&self) -> usize {
        self.words
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        self.tracker.release(self.words);
    }
}

/// A `Vec<T>` whose capacity is charged against the memory budget.
///
/// The charge is taken for the full capacity up front (like a real buffer
/// reservation); pushing beyond the reserved capacity re-charges.
#[derive(Debug)]
pub struct TrackedVec<T> {
    vec: Vec<T>,
    charge: MemCharge,
    words_per_item: usize,
    tracker: MemoryTracker,
    context: String,
}

impl<T> TrackedVec<T> {
    /// Reserve a tracked buffer of `cap` items, each costing
    /// `words_per_item` words.
    ///
    /// # Panics
    ///
    /// In strict mode, panics if the reservation exceeds the budget; see
    /// [`TrackedVec::try_with_capacity`] for the fallible variant.
    pub fn with_capacity(
        tracker: &MemoryTracker,
        cap: usize,
        words_per_item: usize,
        context: &str,
    ) -> Self {
        let charge = tracker.charge(cap * words_per_item, context);
        Self {
            vec: Vec::with_capacity(cap),
            charge,
            words_per_item,
            tracker: tracker.clone(),
            context: context.to_string(),
        }
    }

    /// Fallible reservation: like [`TrackedVec::with_capacity`] but a strict
    /// budget violation comes back as [`EmError::MemoryExceeded`] instead of
    /// panicking.
    pub fn try_with_capacity(
        tracker: &MemoryTracker,
        cap: usize,
        words_per_item: usize,
        context: &str,
    ) -> Result<Self> {
        let charge = tracker.try_charge(cap * words_per_item, context)?;
        Ok(Self {
            vec: Vec::with_capacity(cap),
            charge,
            words_per_item,
            tracker: tracker.clone(),
            context: context.to_string(),
        })
    }

    /// Append an item, re-charging if the reserved capacity is exceeded.
    ///
    /// # Panics
    ///
    /// In strict mode, panics if the growth re-charge exceeds the budget;
    /// see [`TrackedVec::try_push`] for the fallible variant.
    pub fn push(&mut self, item: T) {
        if self.vec.len() == self.vec.capacity() {
            // Grow by doubling (mirrors Vec) and charge for the new capacity.
            let new_cap = (self.vec.capacity() * 2).max(4);
            let new_charge = self
                .tracker
                .charge(new_cap * self.words_per_item, &self.context);
            self.grow_to(new_cap, new_charge);
        }
        self.vec.push(item);
    }

    /// Fallible append: a strict budget violation during growth comes back
    /// as [`EmError::MemoryExceeded`] and the buffer is left unchanged.
    pub fn try_push(&mut self, item: T) -> Result<()> {
        if self.vec.len() == self.vec.capacity() {
            let new_cap = (self.vec.capacity() * 2).max(4);
            let new_charge = self
                .tracker
                .try_charge(new_cap * self.words_per_item, &self.context)?;
            self.grow_to(new_cap, new_charge);
        }
        self.vec.push(item);
        Ok(())
    }

    fn grow_to(&mut self, new_cap: usize, new_charge: MemCharge) {
        if new_cap > self.vec.capacity() {
            self.vec.reserve_exact(new_cap - self.vec.len());
        }
        self.charge = new_charge; // old charge drops here, after the new one is taken
    }

    /// Empty the buffer, keeping capacity (and its charge).
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Consume and return the inner `Vec`, releasing the charge.
    pub fn into_inner(self) -> Vec<T> {
        self.vec
    }

    /// Words charged by this buffer.
    pub fn charged_words(&self) -> usize {
        self.charge.words()
    }
}

impl<T> std::ops::Deref for TrackedVec<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.vec
    }
}

impl<T> std::ops::DerefMut for TrackedVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let t = MemoryTracker::new(100, false);
        {
            let _a = t.charge(40, "a");
            assert_eq!(t.current(), 40);
            {
                let _b = t.charge(50, "b");
                assert_eq!(t.current(), 90);
                assert_eq!(t.peak(), 90);
            }
            assert_eq!(t.current(), 40);
        }
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 90);
    }

    #[test]
    fn lenient_records_violation_in_peak() {
        let t = MemoryTracker::new(10, false);
        let _a = t.charge(25, "big");
        assert_eq!(t.peak(), 25);
    }

    #[test]
    #[should_panic(expected = "memory budget exceeded")]
    fn strict_panics_on_violation() {
        let t = MemoryTracker::new(10, true);
        let _a = t.charge(11, "big");
    }

    #[test]
    fn strict_allows_exact_capacity() {
        let t = MemoryTracker::new(10, true);
        let _a = t.charge(10, "exact");
        assert_eq!(t.current(), 10);
    }

    #[test]
    fn tracked_vec_charges_capacity() {
        let t = MemoryTracker::new(1000, true);
        let v: TrackedVec<u64> = TrackedVec::with_capacity(&t, 16, 1, "buf");
        assert_eq!(t.current(), 16);
        drop(v);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn tracked_vec_grows_and_recharges() {
        let t = MemoryTracker::new(1000, true);
        let mut v: TrackedVec<u64> = TrackedVec::with_capacity(&t, 2, 1, "buf");
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert!(t.current() >= 10, "current = {}", t.current());
        // Growth transiently holds old+new charges; peak reflects that.
        assert!(t.peak() >= t.current());
    }

    #[test]
    fn tracked_vec_words_per_item() {
        let t = MemoryTracker::new(1000, true);
        let _v: TrackedVec<(u64, u64)> = TrackedVec::with_capacity(&t, 8, 2, "pairs");
        assert_eq!(t.current(), 16);
    }

    #[test]
    fn try_charge_rejects_and_rolls_back() {
        let t = MemoryTracker::new(10, true);
        let e = t.try_charge(11, "big").unwrap_err();
        match e {
            crate::EmError::MemoryExceeded {
                requested,
                capacity,
                ..
            } => {
                assert_eq!(requested, 11);
                assert_eq!(capacity, 10);
            }
            other => panic!("unexpected error: {other}"),
        }
        assert_eq!(t.current(), 0, "rejected charge fully rolled back");
        assert_eq!(t.peak(), 0, "rejected charge does not move the peak");
        let _ok = t.try_charge(10, "exact").unwrap();
        assert_eq!(t.current(), 10);
    }

    #[test]
    fn set_capacity_squeezes_and_restores() {
        let t = MemoryTracker::new(100, true);
        let _a = t.try_charge(60, "a").unwrap();
        t.set_capacity(40); // below live: existing charge stays valid
        assert_eq!(t.capacity(), 40);
        assert_eq!(t.available(), 0);
        assert!(t.try_charge(1, "b").is_err(), "over-committed budget");
        t.set_capacity(100);
        let _b = t.try_charge(30, "b").unwrap();
        assert_eq!(t.current(), 90);
    }

    #[test]
    fn try_push_fails_cleanly_on_growth() {
        let t = MemoryTracker::new(8, true);
        let mut v: TrackedVec<u64> = TrackedVec::try_with_capacity(&t, 2, 1, "buf").unwrap();
        v.try_push(1).unwrap();
        v.try_push(2).unwrap();
        // Growth to 4 transiently holds 2 + 4 = 6 words: fits. Growth to 8
        // would transiently hold 4 + 8 = 12 > 8: typed failure, vec intact.
        v.try_push(3).unwrap();
        v.try_push(4).unwrap();
        let e = v.try_push(5).unwrap_err();
        assert!(matches!(e, crate::EmError::MemoryExceeded { .. }));
        assert_eq!(v.len(), 4, "failed push leaves the buffer unchanged");
        assert_eq!(t.current(), 4);
    }

    #[test]
    fn reset_peak() {
        let t = MemoryTracker::new(100, false);
        {
            let _a = t.charge(80, "a");
        }
        assert_eq!(t.peak(), 80);
        t.reset_peak();
        assert_eq!(t.peak(), 0);
    }
}
