//! Internal-memory metering.
//!
//! The point of this module is to keep the algorithms honest with respect to
//! the EM model: every in-memory buffer that holds records (or `Θ(L)`-sized
//! bookkeeping arrays) is allocated through the context and charged against
//! the memory capacity `M`. Peak usage is recorded; in *strict* mode an
//! allocation that would push live usage above `M` panics, which turns a
//! model violation into a test failure rather than a silently wrong
//! complexity measurement.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug)]
struct MemInner {
    current: AtomicUsize,
    peak: AtomicUsize,
    capacity: usize,
    strict: bool,
}

/// Cheaply cloneable handle to the shared memory meter (units: words).
///
/// Thread-safe and lock-free: a meter shared between worker threads updates
/// `current`/`peak` with atomic read-modify-writes, so charges from
/// concurrent sorts never race and never contend on a lock.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    inner: Arc<MemInner>,
}

impl MemoryTracker {
    /// New tracker with capacity `m` words. `strict` decides whether
    /// violations panic (true) or are merely recorded in the peak (false).
    pub fn new(capacity: usize, strict: bool) -> Self {
        Self {
            inner: Arc::new(MemInner {
                current: AtomicUsize::new(0),
                peak: AtomicUsize::new(0),
                capacity,
                strict,
            }),
        }
    }

    /// Charge `words` words, returning a guard that releases them on drop.
    ///
    /// # Panics
    ///
    /// In strict mode, panics if the charge would exceed the capacity.
    pub fn charge(&self, words: usize, context: &str) -> MemCharge {
        let current = self
            .inner
            .current
            .fetch_add(words, Ordering::Relaxed)
            .saturating_add(words);
        self.inner.peak.fetch_max(current, Ordering::Relaxed);
        if self.inner.strict && current > self.inner.capacity {
            let capacity = self.inner.capacity;
            panic!(
                "EM memory budget exceeded: {current} words live > M = {capacity} \
                 (while allocating {words} words for {context})"
            );
        }
        MemCharge {
            tracker: self.clone(),
            words,
        }
    }

    /// Words currently live.
    pub fn current(&self) -> usize {
        self.inner.current.load(Ordering::Relaxed)
    }

    /// Highest number of words ever live.
    pub fn peak(&self) -> usize {
        self.inner.peak.load(Ordering::Relaxed)
    }

    /// The capacity `M` in words.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Whether violations panic.
    pub fn is_strict(&self) -> bool {
        self.inner.strict
    }

    /// Reset the peak to the current live amount (counters between phases).
    pub fn reset_peak(&self) {
        self.inner.peak.store(self.current(), Ordering::Relaxed);
    }

    fn release(&self, words: usize) {
        // Saturating CAS loop rather than a plain fetch_sub so a (buggy)
        // double release clamps at zero instead of wrapping the gauge.
        let prev = self
            .inner
            .current
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |c| {
                Some(c.saturating_sub(words))
            })
            .unwrap_or(0);
        debug_assert!(prev >= words, "memory release underflow");
    }
}

/// RAII guard for a memory charge; releases the words when dropped.
#[derive(Debug)]
pub struct MemCharge {
    tracker: MemoryTracker,
    words: usize,
}

impl MemCharge {
    /// The number of words held by this charge.
    pub fn words(&self) -> usize {
        self.words
    }
}

impl Drop for MemCharge {
    fn drop(&mut self) {
        self.tracker.release(self.words);
    }
}

/// A `Vec<T>` whose capacity is charged against the memory budget.
///
/// The charge is taken for the full capacity up front (like a real buffer
/// reservation); pushing beyond the reserved capacity re-charges.
#[derive(Debug)]
pub struct TrackedVec<T> {
    vec: Vec<T>,
    charge: MemCharge,
    words_per_item: usize,
    tracker: MemoryTracker,
    context: String,
}

impl<T> TrackedVec<T> {
    /// Reserve a tracked buffer of `cap` items, each costing
    /// `words_per_item` words.
    pub fn with_capacity(
        tracker: &MemoryTracker,
        cap: usize,
        words_per_item: usize,
        context: &str,
    ) -> Self {
        let charge = tracker.charge(cap * words_per_item, context);
        Self {
            vec: Vec::with_capacity(cap),
            charge,
            words_per_item,
            tracker: tracker.clone(),
            context: context.to_string(),
        }
    }

    /// Append an item, re-charging if the reserved capacity is exceeded.
    pub fn push(&mut self, item: T) {
        if self.vec.len() == self.vec.capacity() {
            // Grow by doubling (mirrors Vec) and charge for the new capacity.
            let new_cap = (self.vec.capacity() * 2).max(4);
            self.reserve_exact_capacity(new_cap);
        }
        self.vec.push(item);
    }

    fn reserve_exact_capacity(&mut self, new_cap: usize) {
        if new_cap <= self.vec.capacity() {
            return;
        }
        let new_charge = self
            .tracker
            .charge(new_cap * self.words_per_item, &self.context);
        self.vec.reserve_exact(new_cap - self.vec.len());
        self.charge = new_charge; // old charge drops here, after the new one is taken
    }

    /// Empty the buffer, keeping capacity (and its charge).
    pub fn clear(&mut self) {
        self.vec.clear();
    }

    /// Consume and return the inner `Vec`, releasing the charge.
    pub fn into_inner(self) -> Vec<T> {
        self.vec
    }

    /// Words charged by this buffer.
    pub fn charged_words(&self) -> usize {
        self.charge.words()
    }
}

impl<T> std::ops::Deref for TrackedVec<T> {
    type Target = Vec<T>;
    fn deref(&self) -> &Vec<T> {
        &self.vec
    }
}

impl<T> std::ops::DerefMut for TrackedVec<T> {
    fn deref_mut(&mut self) -> &mut Vec<T> {
        &mut self.vec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_and_release() {
        let t = MemoryTracker::new(100, false);
        {
            let _a = t.charge(40, "a");
            assert_eq!(t.current(), 40);
            {
                let _b = t.charge(50, "b");
                assert_eq!(t.current(), 90);
                assert_eq!(t.peak(), 90);
            }
            assert_eq!(t.current(), 40);
        }
        assert_eq!(t.current(), 0);
        assert_eq!(t.peak(), 90);
    }

    #[test]
    fn lenient_records_violation_in_peak() {
        let t = MemoryTracker::new(10, false);
        let _a = t.charge(25, "big");
        assert_eq!(t.peak(), 25);
    }

    #[test]
    #[should_panic(expected = "memory budget exceeded")]
    fn strict_panics_on_violation() {
        let t = MemoryTracker::new(10, true);
        let _a = t.charge(11, "big");
    }

    #[test]
    fn strict_allows_exact_capacity() {
        let t = MemoryTracker::new(10, true);
        let _a = t.charge(10, "exact");
        assert_eq!(t.current(), 10);
    }

    #[test]
    fn tracked_vec_charges_capacity() {
        let t = MemoryTracker::new(1000, true);
        let v: TrackedVec<u64> = TrackedVec::with_capacity(&t, 16, 1, "buf");
        assert_eq!(t.current(), 16);
        drop(v);
        assert_eq!(t.current(), 0);
    }

    #[test]
    fn tracked_vec_grows_and_recharges() {
        let t = MemoryTracker::new(1000, true);
        let mut v: TrackedVec<u64> = TrackedVec::with_capacity(&t, 2, 1, "buf");
        for i in 0..10 {
            v.push(i);
        }
        assert_eq!(v.len(), 10);
        assert!(t.current() >= 10, "current = {}", t.current());
        // Growth transiently holds old+new charges; peak reflects that.
        assert!(t.peak() >= t.current());
    }

    #[test]
    fn tracked_vec_words_per_item() {
        let t = MemoryTracker::new(1000, true);
        let _v: TrackedVec<(u64, u64)> = TrackedVec::with_capacity(&t, 8, 2, "pairs");
        assert_eq!(t.current(), 16);
    }

    #[test]
    fn reset_peak() {
        let t = MemoryTracker::new(100, false);
        {
            let _a = t.charge(80, "a");
        }
        assert_eq!(t.peak(), 80);
        t.reset_peak();
        assert_eq!(t.peak(), 0);
    }
}
