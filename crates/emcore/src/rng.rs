//! Deterministic pseudo-random number generation.
//!
//! A small SplitMix64 — enough statistical quality for workload generation,
//! reservoir sampling and fault-schedule draws, fully deterministic across
//! platforms, and dependency-free. It lives in `emcore` because the fault
//! injection layer ([`crate::FaultPlan`]) needs seeded determinism at the
//! device layer; `workloads` and `emselect` reuse it from here.

/// SplitMix64: fast, seedable, deterministic.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 pseudo-random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        // Modulo bias is negligible for bound ≪ 2^64 (workload generation).
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
    }

    #[test]
    fn unit_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut v: Vec<u64> = (0..100).collect();
        r.shuffle(&mut v);
        let mut s = v.clone();
        s.sort_unstable();
        assert_eq!(s, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
