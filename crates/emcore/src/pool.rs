//! Bounded buffer-pool block cache with clock eviction and pin/unpin.
//!
//! The pool sits *between* the EM cost model and the device: a logical read
//! that hits a cached frame is still charged one model I/O (the paper's
//! bounds are about logical transfers), but no physical device transfer
//! happens. The [`crate::IoStats`] split of `logical_ios` vs `physical_ios`
//! (plus `cache_hits`/`cache_misses`) makes the absorbed traffic visible
//! without ever perturbing Table-1 comparisons.
//!
//! Semantics, chosen so fault-injection behaviour is unchanged:
//!
//! * **Read-only population** — frames are filled from *successful,
//!   checksum-verified* device reads only. A write never populates a frame.
//! * **Write-through + invalidate** on the device path — every logical
//!   write goes to the device, and any cached frame for the written block
//!   is dropped, so a persisted corruption is still detected by the next
//!   (physical) read. The pool *also* supports write-back frames
//!   ([`BlockCache::insert_dirty`]) for embedders that buffer writes: a
//!   dirty frame is **never dropped** — the clock skips it, and capacity
//!   shrinks ([`BlockCache::set_capacity`]) flush it through the caller's
//!   write-back hook before the frame is released.
//! * **Clock eviction** — a second-chance clock over the frame table;
//!   pinned and dirty frames are never evicted, referenced frames get one
//!   more lap.
//! * **No memory-model charge** — the pool models the device/OS cache layer
//!   *beneath* the EM machine, so its frames are not charged against `M`
//!   (strict-mode algorithms keep their exact memory accounting). Budget
//!   squeezes still reach it: the governor shrinks the frame count in
//!   proportion to `M`, shedding clean blocks first, then flushing dirty
//!   ones.
//!
//! The pool is thread-safe; all state sits behind one mutex, and pinned
//! frames hand out shared ownership of the payload bytes so readers never
//! hold the lock while copying.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A cached block is addressed by `(file id, block index)`.
type Key = (u64, u64);

#[derive(Debug)]
struct Frame {
    key: Key,
    /// Encoded payload bytes of the block (shared with outstanding pins).
    data: Arc<Vec<u8>>,
    /// Outstanding [`PinnedBlock`] guards; a pinned frame is never evicted.
    pins: u32,
    /// Clock reference bit: set on hit, cleared as the hand sweeps past.
    referenced: bool,
    /// Write-back frame holding data newer than the device. Never evicted
    /// by the clock; released only after a flush hands it back.
    dirty: bool,
}

#[derive(Debug, Default)]
struct PoolInner {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<Key, usize>,
    /// Clock hand: next frame slot the eviction sweep examines.
    hand: usize,
    evictions: u64,
}

impl PoolInner {
    /// Pick a victim slot with the clock algorithm, or `None` when every
    /// frame is pinned (after two full laps nothing was evictable).
    fn find_victim(&mut self) -> Option<usize> {
        let n = self.frames.len();
        for _ in 0..2 * n {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            let f = &mut self.frames[slot];
            if f.pins > 0 || f.dirty {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Some(slot);
        }
        None
    }

    /// Detach `slot`: drop its mapping and payload, leaving an empty
    /// placeholder frame (slot indices are load-bearing for outstanding
    /// pins, so frames are never removed or reordered).
    fn detach(&mut self, slot: usize) {
        let key = self.frames[slot].key;
        self.map.remove(&key);
        let f = &mut self.frames[slot];
        f.key = (u64::MAX, u64::MAX);
        f.data = Arc::new(Vec::new());
        f.referenced = false;
        f.dirty = false;
    }

    /// Shed clean, unpinned, mapped frames (skipping `keep`) until at most
    /// `target` blocks remain cached. Dirty and pinned frames are left
    /// alone — shedding never loses data.
    fn shed_clean(&mut self, target: usize, keep: Option<usize>) {
        for slot in 0..self.frames.len() {
            if self.map.len() <= target {
                return;
            }
            if keep == Some(slot) {
                continue;
            }
            let f = &self.frames[slot];
            if f.pins == 0 && !f.dirty && f.key != (u64::MAX, u64::MAX) {
                self.evictions += 1;
                self.detach(slot);
            }
        }
    }
}

/// A bounded block cache shared by all files of one [`crate::EmContext`].
///
/// Created with capacity [`crate::EmConfig::cache_blocks`]; capacity 0
/// disables the pool entirely (every lookup is a single `Option` check and
/// no lock is taken — the default, preserving exact physical I/O counts).
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    inner: Option<Arc<Mutex<PoolInner>>>,
}

/// A dirty-frame write-back hook: `(file, block, bytes)` flushed to the
/// device. Used by [`BlockCache::flush_all`] and [`BlockCache::set_capacity`].
pub type FlushFn<'a> = dyn FnMut(u64, u64, &[u8]) -> crate::Result<()> + 'a;

impl BlockCache {
    /// A pool of `capacity` frames; `capacity == 0` disables caching.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: (capacity > 0).then(|| {
                Arc::new(Mutex::new(PoolInner {
                    capacity,
                    ..PoolInner::default()
                }))
            }),
        }
    }

    /// Whether the pool caches anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Frame capacity in blocks (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(i).capacity)
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(i).map.len())
    }

    /// Whether no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames evicted by the clock so far.
    pub fn evictions(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| lock(i).evictions)
    }

    /// Look up `(file, block)`. On a hit the frame's reference bit is set
    /// and the returned [`PinnedBlock`] keeps it pinned (unevictable) until
    /// dropped.
    pub fn get(&self, file: u64, block: u64) -> Option<PinnedBlock> {
        let inner = self.inner.as_ref()?;
        let mut g = lock(inner);
        let slot = *g.map.get(&(file, block))?;
        let f = &mut g.frames[slot];
        f.referenced = true;
        f.pins += 1;
        let data = Arc::clone(&f.data);
        Some(PinnedBlock {
            pool: Arc::clone(inner),
            slot,
            data,
        })
    }

    /// Insert the payload of `(file, block)`, evicting a victim if the pool
    /// is full. Silently does nothing when the pool is disabled, when every
    /// frame is pinned or dirty, or when the block is already cached (a
    /// *clean* existing frame is refreshed with `data`; a dirty frame keeps
    /// its newer write-back payload).
    pub fn insert(&self, file: u64, block: u64, data: &[u8]) {
        self.insert_inner(file, block, data, false);
    }

    /// Insert a *write-back* frame for `(file, block)`: the payload is
    /// newer than the device copy, so the frame is marked dirty and will
    /// never be dropped — only [`BlockCache::flush_all`] /
    /// [`BlockCache::set_capacity`] release it, after handing the bytes to
    /// the caller's flush hook. Returns `false` when the frame could not be
    /// cached (pool disabled, or every frame pinned/dirty) — the caller
    /// must then write through to the device itself.
    #[must_use]
    pub fn insert_dirty(&self, file: u64, block: u64, data: &[u8]) -> bool {
        self.insert_inner(file, block, data, true)
    }

    fn insert_inner(&self, file: u64, block: u64, data: &[u8], dirty: bool) -> bool {
        let Some(inner) = self.inner.as_ref() else {
            return false;
        };
        let key = (file, block);
        let mut g = lock(inner);
        if let Some(&slot) = g.map.get(&key) {
            let f = &mut g.frames[slot];
            if dirty || !f.dirty {
                f.data = Arc::new(data.to_vec());
                f.dirty = f.dirty || dirty;
            }
            f.referenced = true;
            return true;
        }
        let slot = if g.frames.len() < g.capacity {
            g.frames.push(Frame {
                key,
                data: Arc::new(data.to_vec()),
                pins: 0,
                referenced: false,
                dirty,
            });
            g.frames.len() - 1
        } else {
            let Some(victim) = g.find_victim() else {
                return false; // everything pinned/dirty: drop, never block
            };
            let old = g.frames[victim].key;
            g.map.remove(&old);
            g.evictions += 1;
            let f = &mut g.frames[victim];
            f.key = key;
            f.data = Arc::new(data.to_vec());
            f.referenced = false;
            f.dirty = dirty;
            victim
        };
        g.map.insert(key, slot);
        // After a governor shrink the frame table may be longer than the
        // (new) capacity; keep the cached-block count at the target by
        // shedding other clean frames.
        let cap = g.capacity;
        if g.map.len() > cap {
            g.shed_clean(cap, Some(slot));
        }
        true
    }

    /// Write-back frames currently held (blocks newer than the device).
    pub fn dirty_len(&self) -> usize {
        self.inner
            .as_ref()
            .map_or(0, |i| lock(i).frames.iter().filter(|f| f.dirty).count())
    }

    /// Flush every dirty frame through `flush(file, block, bytes)`, marking
    /// it clean on success. Stops at (and returns) the first flush error,
    /// leaving the remaining frames dirty — a failed write-back never drops
    /// data. The pool lock is *not* held across `flush` calls, so the hook
    /// may safely re-enter the cache (e.g. a device write that invalidates).
    pub fn flush_all(&self, flush: &mut FlushFn<'_>) -> crate::Result<()> {
        let Some(inner) = self.inner.as_ref() else {
            return Ok(());
        };
        loop {
            let Some((slot, key, data)) = next_dirty(inner, 0, false) else {
                return Ok(());
            };
            flush(key.0, key.1, &data)?;
            let mut g = lock(inner);
            let f = &mut g.frames[slot];
            if f.key == key && Arc::ptr_eq(&f.data, &data) {
                f.dirty = false;
            }
        }
    }

    /// Re-point the frame budget (the governor's squeeze/restore path).
    /// Shrinking sheds clean blocks first; if the target is still exceeded,
    /// dirty frames are flushed through `flush` and *then* released — a
    /// dirty block is never dropped. Pinned frames are kept even over
    /// target (best effort until the pins drain). A flush error aborts the
    /// shrink with the remaining dirty frames intact.
    pub fn set_capacity(&self, new_cap: usize, flush: &mut FlushFn<'_>) -> crate::Result<()> {
        let Some(inner) = self.inner.as_ref() else {
            return Ok(());
        };
        {
            let mut g = lock(inner);
            g.capacity = new_cap;
            g.shed_clean(new_cap, None);
        }
        let mut from = 0;
        while lock(inner).map.len() > new_cap {
            let Some((slot, key, data)) = next_dirty(inner, from, true) else {
                return Ok(()); // only pinned frames remain over target
            };
            flush(key.0, key.1, &data)?;
            let mut g = lock(inner);
            let f = &g.frames[slot];
            if f.key == key && Arc::ptr_eq(&f.data, &data) {
                g.evictions += 1;
                g.detach(slot);
            }
            from = slot + 1;
        }
        Ok(())
    }

    /// Drop any cached frame for `(file, block)` — called on every write so
    /// the next read is physical. A pinned frame is unlinked from the map
    /// (readers holding the pin keep their snapshot; fresh lookups miss).
    pub fn invalidate(&self, file: u64, block: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut g = lock(inner);
        if let Some(slot) = g.map.remove(&(file, block)) {
            // Leave the frame in place but mark it reclaimable (the device
            // now holds newer bytes, so even a dirty payload is stale).
            g.detach(slot);
        }
    }

    /// Drop every cached frame of `file` (file cleared or deleted).
    pub fn invalidate_file(&self, file: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut g = lock(inner);
        let keys: Vec<Key> = g.map.keys().filter(|k| k.0 == file).copied().collect();
        for key in keys {
            if let Some(slot) = g.map.remove(&key) {
                g.detach(slot);
            }
        }
    }
}

fn lock(inner: &Arc<Mutex<PoolInner>>) -> MutexGuard<'_, PoolInner> {
    inner.lock().unwrap_or_else(|p| p.into_inner())
}

/// Snapshot the first dirty frame at slot `>= from` (optionally requiring
/// it to be unpinned), releasing the lock before the caller flushes so the
/// flush hook can safely re-enter the cache.
fn next_dirty(
    inner: &Arc<Mutex<PoolInner>>,
    from: usize,
    require_unpinned: bool,
) -> Option<(usize, Key, Arc<Vec<u8>>)> {
    let g = lock(inner);
    g.frames
        .iter()
        .enumerate()
        .skip(from)
        .find(|(_, f)| f.dirty && (!require_unpinned || f.pins == 0))
        .map(|(slot, f)| (slot, f.key, Arc::clone(&f.data)))
}

/// Shared, pinned view of one cached block's payload bytes. The frame
/// cannot be evicted while this guard lives; dropping it unpins.
#[derive(Debug)]
pub struct PinnedBlock {
    pool: Arc<Mutex<PoolInner>>,
    slot: usize,
    data: Arc<Vec<u8>>,
}

impl std::ops::Deref for PinnedBlock {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PinnedBlock {
    fn drop(&mut self) {
        let mut g = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        let f = &mut g.frames[self.slot];
        f.pins = f.pins.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pool_is_inert() {
        let c = BlockCache::new(0);
        assert!(!c.is_enabled());
        c.insert(0, 0, &[1, 2, 3]);
        assert!(c.get(0, 0).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn hit_returns_inserted_payload() {
        let c = BlockCache::new(4);
        c.insert(1, 7, &[9, 8, 7]);
        let pin = c.get(1, 7).expect("hit");
        assert_eq!(&*pin, &[9, 8, 7]);
        assert!(c.get(1, 8).is_none());
        assert!(c.get(2, 7).is_none());
    }

    #[test]
    fn clock_evicts_oldest_unreferenced() {
        let c = BlockCache::new(2);
        c.insert(0, 0, &[0]);
        c.insert(0, 1, &[1]);
        // Touch block 1 so its reference bit is set; block 0 is the victim.
        drop(c.get(0, 1));
        c.insert(0, 2, &[2]);
        assert!(c.get(0, 0).is_none(), "unreferenced frame evicted");
        assert!(c.get(0, 1).is_some(), "referenced frame survived");
        assert!(c.get(0, 2).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let c = BlockCache::new(2);
        c.insert(0, 0, &[0]);
        c.insert(0, 1, &[1]);
        let pin0 = c.get(0, 0).unwrap();
        let pin1 = c.get(0, 1).unwrap();
        // Both frames pinned: the insert is dropped rather than blocking.
        c.insert(0, 2, &[2]);
        assert!(c.get(0, 2).is_none());
        assert_eq!(&*pin0, &[0]);
        drop(pin0);
        drop(pin1);
        // With pins released the clock can evict again.
        c.insert(0, 2, &[2]);
        assert!(c.get(0, 2).is_some());
    }

    #[test]
    fn invalidate_drops_future_lookups_but_keeps_pins() {
        let c = BlockCache::new(2);
        c.insert(3, 5, &[42]);
        let pin = c.get(3, 5).unwrap();
        c.invalidate(3, 5);
        assert!(c.get(3, 5).is_none(), "invalidated block misses");
        assert_eq!(&*pin, &[42], "outstanding pin keeps its snapshot");
    }

    #[test]
    fn invalidate_file_sweeps_all_blocks() {
        let c = BlockCache::new(8);
        for b in 0..4 {
            c.insert(1, b, &[b as u8]);
            c.insert(2, b, &[b as u8]);
        }
        c.invalidate_file(1);
        for b in 0..4 {
            assert!(c.get(1, b).is_none());
            assert!(c.get(2, b).is_some());
        }
    }

    #[test]
    fn reinsert_refreshes_payload() {
        let c = BlockCache::new(2);
        c.insert(0, 0, &[1]);
        c.insert(0, 0, &[2]);
        assert_eq!(c.len(), 1);
        assert_eq!(&*c.get(0, 0).unwrap(), &[2]);
    }

    #[test]
    fn dirty_frames_survive_the_clock() {
        let c = BlockCache::new(2);
        assert!(c.insert_dirty(0, 0, &[7]));
        c.insert(0, 1, &[1]);
        // Pool full; the clock must victimize the clean frame, never the
        // dirty one, no matter how much traffic passes through.
        for b in 2..10 {
            c.insert(0, b, &[b as u8]);
        }
        assert_eq!(&*c.get(0, 0).unwrap(), &[7], "dirty frame still cached");
        assert_eq!(c.dirty_len(), 1);
    }

    #[test]
    fn clean_insert_does_not_clobber_dirty_payload() {
        let c = BlockCache::new(2);
        assert!(c.insert_dirty(4, 2, &[9, 9]));
        c.insert(4, 2, &[1, 1]); // read-population with stale device bytes
        assert_eq!(&*c.get(4, 2).unwrap(), &[9, 9]);
        assert!(c.insert_dirty(4, 2, &[3])); // newer write-back wins
        assert_eq!(&*c.get(4, 2).unwrap(), &[3]);
    }

    #[test]
    fn shrink_sheds_clean_then_flushes_dirty_never_drops() {
        let c = BlockCache::new(4);
        assert!(c.insert_dirty(1, 0, &[10]));
        assert!(c.insert_dirty(1, 1, &[11]));
        c.insert(1, 2, &[12]);
        c.insert(1, 3, &[13]);
        let mut flushed: Vec<(u64, u64, Vec<u8>)> = Vec::new();
        c.set_capacity(1, &mut |f, b, d| {
            flushed.push((f, b, d.to_vec()));
            Ok(())
        })
        .unwrap();
        assert!(c.len() <= 1, "cache shrunk to the new budget");
        // Both clean frames were shed without a flush; exactly one dirty
        // frame had to be written back to reach the target, and its bytes
        // arrived intact at the write-back hook.
        assert_eq!(flushed.len(), 1);
        let (f, b, d) = &flushed[0];
        assert_eq!(*f, 1);
        assert_eq!(d, &vec![10 + *b as u8]);
        assert_eq!(
            c.dirty_len(),
            1,
            "the surviving frame is the other dirty block"
        );
    }

    #[test]
    fn failed_flush_aborts_shrink_with_data_intact() {
        let c = BlockCache::new(2);
        assert!(c.insert_dirty(0, 0, &[1]));
        assert!(c.insert_dirty(0, 1, &[2]));
        let e = c.set_capacity(0, &mut |_, _, _| {
            Err(crate::EmError::config("device refused"))
        });
        assert!(e.is_err());
        assert_eq!(c.dirty_len(), 2, "no dirty frame dropped on flush failure");
        assert_eq!(&*c.get(0, 0).unwrap(), &[1]);
        assert_eq!(&*c.get(0, 1).unwrap(), &[2]);
    }

    #[test]
    fn flush_all_marks_clean_without_evicting() {
        let c = BlockCache::new(4);
        assert!(c.insert_dirty(2, 0, &[5]));
        assert!(c.insert_dirty(2, 1, &[6]));
        let mut flushed = Vec::new();
        c.flush_all(&mut |_, b, d| {
            flushed.push((b, d.to_vec()));
            Ok(())
        })
        .unwrap();
        assert_eq!(flushed.len(), 2);
        assert_eq!(c.dirty_len(), 0);
        assert_eq!(c.len(), 2, "flushed frames stay cached, now clean");
        assert_eq!(&*c.get(2, 0).unwrap(), &[5]);
    }

    #[test]
    fn grow_after_shrink_restores_headroom() {
        let c = BlockCache::new(4);
        for b in 0..4 {
            c.insert(0, b, &[b as u8]);
        }
        c.set_capacity(1, &mut |_, _, _| Ok(())).unwrap();
        assert!(c.len() <= 1);
        c.set_capacity(4, &mut |_, _, _| Ok(())).unwrap();
        for b in 10..14 {
            c.insert(0, b, &[b as u8]);
        }
        assert_eq!(c.len(), 4, "restored budget caches four blocks again");
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = BlockCache::new(16);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        c.insert(t, i % 8, &[t as u8, i as u8]);
                        if let Some(pin) = c.get(t, i % 8) {
                            assert_eq!(pin[0], t as u8);
                        }
                        if i % 16 == 0 {
                            c.invalidate_file(t);
                        }
                    }
                });
            }
        });
    }
}
