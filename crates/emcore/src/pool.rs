//! Bounded buffer-pool block cache with clock eviction and pin/unpin.
//!
//! The pool sits *between* the EM cost model and the device: a logical read
//! that hits a cached frame is still charged one model I/O (the paper's
//! bounds are about logical transfers), but no physical device transfer
//! happens. The [`crate::IoStats`] split of `logical_ios` vs `physical_ios`
//! (plus `cache_hits`/`cache_misses`) makes the absorbed traffic visible
//! without ever perturbing Table-1 comparisons.
//!
//! Semantics, chosen so fault-injection behaviour is unchanged:
//!
//! * **Read-only population** — frames are filled from *successful,
//!   checksum-verified* device reads only. A write never populates a frame.
//! * **Write-through + invalidate** — every logical write goes to the
//!   device, and any cached frame for the written block is dropped, so a
//!   persisted corruption is still detected by the next (physical) read.
//! * **Clock eviction** — a second-chance clock over the frame table;
//!   pinned frames are never evicted, referenced frames get one more lap.
//! * **No memory-model charge** — the pool models the device/OS cache layer
//!   *beneath* the EM machine, so its frames are not charged against `M`
//!   (strict-mode algorithms keep their exact memory accounting).
//!
//! The pool is thread-safe; all state sits behind one mutex, and pinned
//! frames hand out shared ownership of the payload bytes so readers never
//! hold the lock while copying.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// A cached block is addressed by `(file id, block index)`.
type Key = (u64, u64);

#[derive(Debug)]
struct Frame {
    key: Key,
    /// Encoded payload bytes of the block (shared with outstanding pins).
    data: Arc<Vec<u8>>,
    /// Outstanding [`PinnedBlock`] guards; a pinned frame is never evicted.
    pins: u32,
    /// Clock reference bit: set on hit, cleared as the hand sweeps past.
    referenced: bool,
}

#[derive(Debug, Default)]
struct PoolInner {
    capacity: usize,
    frames: Vec<Frame>,
    map: HashMap<Key, usize>,
    /// Clock hand: next frame slot the eviction sweep examines.
    hand: usize,
    evictions: u64,
}

impl PoolInner {
    /// Pick a victim slot with the clock algorithm, or `None` when every
    /// frame is pinned (after two full laps nothing was evictable).
    fn find_victim(&mut self) -> Option<usize> {
        let n = self.frames.len();
        for _ in 0..2 * n {
            let slot = self.hand;
            self.hand = (self.hand + 1) % n;
            let f = &mut self.frames[slot];
            if f.pins > 0 {
                continue;
            }
            if f.referenced {
                f.referenced = false;
                continue;
            }
            return Some(slot);
        }
        None
    }
}

/// A bounded block cache shared by all files of one [`crate::EmContext`].
///
/// Created with capacity [`crate::EmConfig::cache_blocks`]; capacity 0
/// disables the pool entirely (every lookup is a single `Option` check and
/// no lock is taken — the default, preserving exact physical I/O counts).
#[derive(Debug, Clone, Default)]
pub struct BlockCache {
    inner: Option<Arc<Mutex<PoolInner>>>,
}

impl BlockCache {
    /// A pool of `capacity` frames; `capacity == 0` disables caching.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: (capacity > 0).then(|| {
                Arc::new(Mutex::new(PoolInner {
                    capacity,
                    ..PoolInner::default()
                }))
            }),
        }
    }

    /// Whether the pool caches anything at all.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Frame capacity in blocks (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(i).capacity)
    }

    /// Blocks currently cached.
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| lock(i).map.len())
    }

    /// Whether no blocks are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames evicted by the clock so far.
    pub fn evictions(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| lock(i).evictions)
    }

    /// Look up `(file, block)`. On a hit the frame's reference bit is set
    /// and the returned [`PinnedBlock`] keeps it pinned (unevictable) until
    /// dropped.
    pub fn get(&self, file: u64, block: u64) -> Option<PinnedBlock> {
        let inner = self.inner.as_ref()?;
        let mut g = lock(inner);
        let slot = *g.map.get(&(file, block))?;
        let f = &mut g.frames[slot];
        f.referenced = true;
        f.pins += 1;
        let data = Arc::clone(&f.data);
        Some(PinnedBlock {
            pool: Arc::clone(inner),
            slot,
            data,
        })
    }

    /// Insert the payload of `(file, block)`, evicting a victim if the pool
    /// is full. Silently does nothing when the pool is disabled, when every
    /// frame is pinned, or when the block is already cached (the existing
    /// frame is refreshed with `data`).
    pub fn insert(&self, file: u64, block: u64, data: &[u8]) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let key = (file, block);
        let mut g = lock(inner);
        if let Some(&slot) = g.map.get(&key) {
            let f = &mut g.frames[slot];
            f.data = Arc::new(data.to_vec());
            f.referenced = true;
            return;
        }
        let slot = if g.frames.len() < g.capacity {
            g.frames.push(Frame {
                key,
                data: Arc::new(data.to_vec()),
                pins: 0,
                referenced: false,
            });
            g.frames.len() - 1
        } else {
            let Some(victim) = g.find_victim() else {
                return; // everything pinned: drop the insert, never block
            };
            let old = g.frames[victim].key;
            g.map.remove(&old);
            g.evictions += 1;
            let f = &mut g.frames[victim];
            f.key = key;
            f.data = Arc::new(data.to_vec());
            f.referenced = false;
            victim
        };
        g.map.insert(key, slot);
    }

    /// Drop any cached frame for `(file, block)` — called on every write so
    /// the next read is physical. A pinned frame is unlinked from the map
    /// (readers holding the pin keep their snapshot; fresh lookups miss).
    pub fn invalidate(&self, file: u64, block: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut g = lock(inner);
        if let Some(slot) = g.map.remove(&(file, block)) {
            // Leave the frame in place but mark it reclaimable: clear the
            // reference bit and detach the key so the clock can take it.
            g.frames[slot].referenced = false;
            g.frames[slot].key = (u64::MAX, u64::MAX);
        }
    }

    /// Drop every cached frame of `file` (file cleared or deleted).
    pub fn invalidate_file(&self, file: u64) {
        let Some(inner) = self.inner.as_ref() else {
            return;
        };
        let mut g = lock(inner);
        let keys: Vec<Key> = g.map.keys().filter(|k| k.0 == file).copied().collect();
        for key in keys {
            if let Some(slot) = g.map.remove(&key) {
                g.frames[slot].referenced = false;
                g.frames[slot].key = (u64::MAX, u64::MAX);
            }
        }
    }
}

fn lock(inner: &Arc<Mutex<PoolInner>>) -> MutexGuard<'_, PoolInner> {
    inner.lock().unwrap_or_else(|p| p.into_inner())
}

/// Shared, pinned view of one cached block's payload bytes. The frame
/// cannot be evicted while this guard lives; dropping it unpins.
#[derive(Debug)]
pub struct PinnedBlock {
    pool: Arc<Mutex<PoolInner>>,
    slot: usize,
    data: Arc<Vec<u8>>,
}

impl std::ops::Deref for PinnedBlock {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl Drop for PinnedBlock {
    fn drop(&mut self) {
        let mut g = self.pool.lock().unwrap_or_else(|p| p.into_inner());
        let f = &mut g.frames[self.slot];
        f.pins = f.pins.saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_pool_is_inert() {
        let c = BlockCache::new(0);
        assert!(!c.is_enabled());
        c.insert(0, 0, &[1, 2, 3]);
        assert!(c.get(0, 0).is_none());
        assert_eq!(c.len(), 0);
        assert_eq!(c.capacity(), 0);
    }

    #[test]
    fn hit_returns_inserted_payload() {
        let c = BlockCache::new(4);
        c.insert(1, 7, &[9, 8, 7]);
        let pin = c.get(1, 7).expect("hit");
        assert_eq!(&*pin, &[9, 8, 7]);
        assert!(c.get(1, 8).is_none());
        assert!(c.get(2, 7).is_none());
    }

    #[test]
    fn clock_evicts_oldest_unreferenced() {
        let c = BlockCache::new(2);
        c.insert(0, 0, &[0]);
        c.insert(0, 1, &[1]);
        // Touch block 1 so its reference bit is set; block 0 is the victim.
        drop(c.get(0, 1));
        c.insert(0, 2, &[2]);
        assert!(c.get(0, 0).is_none(), "unreferenced frame evicted");
        assert!(c.get(0, 1).is_some(), "referenced frame survived");
        assert!(c.get(0, 2).is_some());
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn pinned_frames_are_never_evicted() {
        let c = BlockCache::new(2);
        c.insert(0, 0, &[0]);
        c.insert(0, 1, &[1]);
        let pin0 = c.get(0, 0).unwrap();
        let pin1 = c.get(0, 1).unwrap();
        // Both frames pinned: the insert is dropped rather than blocking.
        c.insert(0, 2, &[2]);
        assert!(c.get(0, 2).is_none());
        assert_eq!(&*pin0, &[0]);
        drop(pin0);
        drop(pin1);
        // With pins released the clock can evict again.
        c.insert(0, 2, &[2]);
        assert!(c.get(0, 2).is_some());
    }

    #[test]
    fn invalidate_drops_future_lookups_but_keeps_pins() {
        let c = BlockCache::new(2);
        c.insert(3, 5, &[42]);
        let pin = c.get(3, 5).unwrap();
        c.invalidate(3, 5);
        assert!(c.get(3, 5).is_none(), "invalidated block misses");
        assert_eq!(&*pin, &[42], "outstanding pin keeps its snapshot");
    }

    #[test]
    fn invalidate_file_sweeps_all_blocks() {
        let c = BlockCache::new(8);
        for b in 0..4 {
            c.insert(1, b, &[b as u8]);
            c.insert(2, b, &[b as u8]);
        }
        c.invalidate_file(1);
        for b in 0..4 {
            assert!(c.get(1, b).is_none());
            assert!(c.get(2, b).is_some());
        }
    }

    #[test]
    fn reinsert_refreshes_payload() {
        let c = BlockCache::new(2);
        c.insert(0, 0, &[1]);
        c.insert(0, 0, &[2]);
        assert_eq!(c.len(), 1);
        assert_eq!(&*c.get(0, 0).unwrap(), &[2]);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let c = BlockCache::new(16);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..200u64 {
                        c.insert(t, i % 8, &[t as u8, i as u8]);
                        if let Some(pin) = c.get(t, i % 8) {
                            assert_eq!(pin[0], t as u8);
                        }
                        if i % 16 == 0 {
                            c.invalidate_file(t);
                        }
                    }
                });
            }
        });
    }
}
