//! Typed block files, the disk objects of the EM model.
//!
//! An [`EmFile<T>`] is a sequence of records of `T` stored in blocks of `B`
//! records. Reads and writes happen at block granularity and each transfer
//! charges one I/O to the owning context's [`crate::IoStats`]. Two backends
//! exist — host-RAM blocks for fast simulation and real files (fixed-width
//! byte encoding) — with identical accounting.
//!
//! Files are append-only at the block level (only the last block may be
//! partial), which is all the algorithms in this workspace need; random
//! *reads* are allowed anywhere.
//!
//! ## Device layer: faults, checksums, retries
//!
//! Every block transfer goes through a device layer *beneath* both backends:
//!
//! * If the context has a [`crate::FaultPlan`], each attempt consults it and
//!   may fail transiently, tear the write, corrupt the payload, or crash.
//! * On the file backend, each block is stored with an 8-byte checksum of
//!   its payload ([`crate::block_checksum`]) at a fixed slot after the
//!   block's full capacity; every read verifies it and surfaces
//!   [`EmError::Corrupt`] on mismatch (this is what catches torn writes and
//!   silent corruption). The memory backend has no checksums — in-flight
//!   read corruption there is silent, which is exactly the danger checksums
//!   exist to remove.
//! * Retryable failures (transient errors, checksum misses) are retried
//!   under the context's [`crate::RetryPolicy`]; every failed-then-retried
//!   attempt is charged to [`crate::Counters::retries`] and its backoff to
//!   [`crate::EmContext::backoff_ticks`]. The *successful* attempt is
//!   charged to `reads`/`writes` as usual, so fault-free I/O counts are
//!   unchanged by this machinery.
//!
//! Byte counters (`bytes_read`/`bytes_written`) account payload only, not
//! checksums, so they keep meaning "record bytes moved".
//!
//! ## Logical vs physical I/O
//!
//! When the context has a [`crate::BlockCache`], a read that hits the cache
//! is still charged one *logical* I/O (`reads` — the model's currency) but
//! no *physical* transfer happens: the fault plan is not consulted and
//! `physical_reads` does not move. Writes are write-through (every write is
//! physical) and invalidate any cached frame, so persisted corruption is
//! still caught by the next physical read.

use std::cell::RefCell;
use std::fs::File;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::checksum::block_checksum;
use crate::ctx::EmContext;
use crate::error::{EmError, Result};
use crate::fault::{FaultKind, IoOp};
use crate::memory::TrackedVec;
use crate::record::Record;
use crate::trace::PointKind;

/// Width of the per-block checksum on the file backend.
const CHECKSUM_BYTES: usize = 8;

thread_local! {
    /// Per-thread byte scratch for disk-backend block encode/decode.
    /// Thread-local (rather than per-file) so concurrent readers of the
    /// same file never contend on — or panic over — one shared buffer.
    static SCRATCH: RefCell<Vec<u8>> = const { RefCell::new(Vec::new()) };
}

#[derive(Debug)]
enum Storage<T: Record> {
    Mem(Vec<Box<[T]>>),
    Disk { file: File, path: PathBuf },
}

/// Outcome of consulting the fault plan that the device handler must act on
/// mid-transfer (transients and crashes short-circuit to `Err` earlier).
enum Injected {
    None,
    /// Persist a prefix, then fail with the given attempt index.
    Torn(u64),
    /// Flip a payload bit in-flight (reads) or before persisting (writes).
    Corrupt,
}

/// Consult the fault plan for the next device attempt. Transients and
/// crashes return `Err`; faults with device-state side effects are returned
/// for the backend handler to perform.
fn consult_plan(ctx: &EmContext, op: IoOp, file: u64) -> Result<Injected> {
    let plan = ctx.fault_plan();
    let Some(plan) = plan else {
        return Ok(Injected::None);
    };
    let tracer = ctx.tracer();
    let traced = tracer.is_enabled() && !ctx.stats().is_paused();
    let injected_before = if traced { plan.injected().total() } else { 0 };
    let decision = plan.decide(op);
    if traced {
        if let Some(kind) = decision {
            // A crashed context reports Fatal on every attempt without
            // advancing the schedule — only genuinely injected faults (the
            // injection tally moved) become events.
            if plan.injected().total() > injected_before {
                tracer.point(PointKind::Fault { kind, op, file });
            }
        }
    }
    match decision {
        None => Ok(Injected::None),
        Some(FaultKind::Fatal) => Err(EmError::Crashed),
        Some(FaultKind::TransientRead) | Some(FaultKind::TransientWrite) => {
            Err(EmError::Transient {
                op,
                index: plan.last_attempt_index(),
            })
        }
        Some(FaultKind::TornWrite) => Ok(Injected::Torn(plan.last_attempt_index())),
        Some(FaultKind::CorruptRead) | Some(FaultKind::CorruptWrite) => Ok(Injected::Corrupt),
    }
}

/// Run one block transfer under the context's retry policy: retryable
/// failures are retried up to `max_attempts` total attempts, charging one
/// `retries` count and a deterministic backoff per failed attempt.
fn with_retries<R>(ctx: &EmContext, mut attempt: impl FnMut() -> Result<R>) -> Result<R> {
    // The policy is only consulted after a failure, so the (overwhelmingly
    // common) clean transfer never touches the policy mutex.
    let mut policy: Option<crate::RetryPolicy> = None;
    let mut failed: u32 = 0;
    loop {
        match attempt() {
            Ok(r) => return Ok(r),
            Err(e) if e.is_retryable() => {
                let p = *policy.get_or_insert_with(|| ctx.retry_policy());
                if failed + 1 >= p.max_attempts {
                    return Err(e);
                }
                failed += 1;
                ctx.stats().record_retry();
                if ctx.tracer().is_enabled() && !ctx.stats().is_paused() {
                    let op = match &e {
                        EmError::Transient { op, .. } => *op,
                        // The only other retryable error is Corrupt, which
                        // is detected on the read path.
                        _ => IoOp::Read,
                    };
                    ctx.tracer().point(PointKind::Retry { op });
                }
                ctx.note_backoff(p.backoff_ticks(failed));
            }
            Err(e) => return Err(e),
        }
    }
}

/// Charge the configured simulated device latency for one physical disk
/// transfer. No locks are held here, so concurrent transfers (prefetch
/// threads, write-behind) overlap their sleeps exactly as overlapped
/// requests would on a real device.
fn throttle_device(ctx: &EmContext) {
    let us = ctx.config().device_latency_us();
    if us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(us));
    }
}

/// Flip one bit of a record through its byte encoding (memory-backend
/// corruption, where there is no byte image to damage directly).
fn flip_record_bit<T: Record>(r: &T) -> T {
    let mut buf = vec![0u8; T::BYTES];
    r.write_bytes(&mut buf);
    buf[0] ^= 1;
    T::read_bytes(&buf)
}

/// A sequence of records stored in `B`-record blocks on the context's
/// backing store.
#[derive(Debug)]
pub struct EmFile<T: Record> {
    ctx: EmContext,
    storage: Storage<T>,
    len: u64,
    id: u64,
    /// When set, dropping the handle leaves the backing file on disk —
    /// used for files referenced by a checkpoint journal, which must
    /// survive a (simulated or real) process exit for resume.
    persistent: AtomicBool,
}

impl<T: Record> EmFile<T> {
    pub(crate) fn create(ctx: EmContext, id: u64) -> Result<Self> {
        let storage = match ctx.file_path(id) {
            None => Storage::Mem(Vec::new()),
            Some(path) => {
                let file = File::options()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)?;
                Storage::Disk { file, path }
            }
        };
        Ok(Self {
            ctx,
            storage,
            len: 0,
            id,
            persistent: AtomicBool::new(false),
        })
    }

    /// Reopen an existing on-disk block file without truncating it (the
    /// cross-process resume path; see [`crate::EmContext::open_file`]).
    /// Validates the stored size against the block layout for `len`
    /// records. The handle starts out persistent.
    pub(crate) fn open_existing(ctx: EmContext, id: u64, len: u64) -> Result<Self> {
        let path = ctx.file_path(id).ok_or_else(|| {
            EmError::config("open_existing: no backing directory for this context")
        })?;
        let file = File::options().read(true).write(true).open(&path)?;
        let cap = ctx.config().block_records_for_width(T::WORDS);
        let stride = (cap * T::BYTES + CHECKSUM_BYTES) as u64;
        let want = len.div_ceil(cap as u64) * stride;
        let have = file.metadata()?.len();
        if have < want {
            return Err(EmError::config(format!(
                "open_existing: file em-{id:08}.bin holds {have} bytes, \
                 {want} needed for {len} records"
            )));
        }
        let f = Self {
            ctx,
            storage: Storage::Disk { file, path },
            len,
            id,
            persistent: AtomicBool::new(true),
        };
        // A fresh context's gauge starts at zero; reopened blocks re-enter
        // it so live/peak reflect what is actually on the backing store.
        f.ctx.tracer().note_blocks_alloc(f.num_blocks());
        Ok(f)
    }

    /// Mark whether the backing file should survive this handle's drop.
    /// Recoverable algorithms set this when a file becomes referenced by a
    /// checkpoint journal and clear it when the reference is retired, so
    /// intentional releases delete data as usual.
    #[inline]
    pub fn set_persistent(&self, keep: bool) {
        self.persistent.store(keep, Ordering::Relaxed);
    }

    /// Whether the backing file survives this handle's drop.
    #[inline]
    pub fn persistent(&self) -> bool {
        self.persistent.load(Ordering::Relaxed)
    }

    /// The owning context.
    #[inline]
    pub fn ctx(&self) -> &EmContext {
        &self.ctx
    }

    /// This file's id within its context (stable across the context's
    /// lifetime; the `file` field of [`EmError::Corrupt`]).
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records per block for this record type: `max(1, B / T::WORDS)` —
    /// a block holds `B` *words*, so wider records pack fewer per block.
    #[inline]
    pub fn block_capacity(&self) -> usize {
        self.ctx.config().block_records_for_width(T::WORDS)
    }

    /// Number of records in the file.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks (the last may be partial).
    #[inline]
    pub fn num_blocks(&self) -> u64 {
        self.len.div_ceil(self.block_capacity() as u64)
    }

    /// Number of records stored in block `block`.
    #[inline]
    pub fn block_len(&self, block: u64) -> usize {
        let b = self.block_capacity() as u64;
        let start = block * b;
        debug_assert!(start < self.len || self.len == 0);
        (self.len - start).min(b) as usize
    }

    /// On-disk stride of one block: full payload capacity plus checksum.
    #[inline]
    fn disk_stride(&self) -> u64 {
        (self.block_capacity() * T::BYTES + CHECKSUM_BYTES) as u64
    }

    /// One device read attempt: consult the fault plan, transfer, verify.
    /// Feeds the physical-transfer latency histogram when metrics are
    /// live; disabled metrics cost exactly one branch here.
    fn device_read(&self, block: u64, count: usize, buf: &mut Vec<T>) -> Result<()> {
        let t0 = self
            .ctx
            .inner
            .metrics
            .enabled()
            .then(std::time::Instant::now);
        let r = self.device_read_raw(block, count, buf);
        if let Some(t0) = t0 {
            self.ctx
                .inner
                .device_read_us
                .record(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
        r
    }

    fn device_read_raw(&self, block: u64, count: usize, buf: &mut Vec<T>) -> Result<()> {
        let injected = consult_plan(&self.ctx, IoOp::Read, self.id)?;
        buf.clear();
        match &self.storage {
            Storage::Mem(blocks) => {
                buf.extend_from_slice(&blocks[block as usize]);
                if matches!(injected, Injected::Corrupt) && !buf.is_empty() {
                    // No checksums in RAM: the flip goes through silently.
                    buf[0] = flip_record_bit(&buf[0]);
                }
                self.ctx.stats().record_read_block(self.id, block, 0);
                self.ctx.stats().record_physical_read();
            }
            Storage::Disk { file, .. } => {
                use std::os::unix::fs::FileExt;
                let bytes = count * T::BYTES;
                let off = block * self.disk_stride();
                SCRATCH.with_borrow_mut(|sc| {
                    sc.resize(bytes + CHECKSUM_BYTES, 0);
                    let (payload, sum) = sc.split_at_mut(bytes);
                    file.read_exact_at(payload, off)?;
                    file.read_exact_at(sum, off + (self.block_capacity() * T::BYTES) as u64)?;
                    if matches!(injected, Injected::Corrupt) && bytes > 0 {
                        payload[0] ^= 1;
                    }
                    let stored =
                        u64::from_le_bytes(sum.try_into().map_err(|_| EmError::Corrupt {
                            block,
                            file: self.id,
                        })?);
                    if block_checksum(payload) != stored {
                        self.ctx.stats().record_corrupt_read();
                        return Err(EmError::Corrupt {
                            block,
                            file: self.id,
                        });
                    }
                    for i in 0..count {
                        buf.push(T::read_bytes(&payload[i * T::BYTES..]));
                    }
                    Ok(())
                })?;
                self.ctx
                    .stats()
                    .record_read_block(self.id, block, bytes as u64);
                self.ctx.stats().record_physical_read();
                throttle_device(&self.ctx);
            }
        }
        Ok(())
    }

    /// One device write attempt into block slot `slot`. Timed like
    /// [`Self::device_read`].
    fn device_write(&mut self, slot: u64, data: &[T]) -> Result<()> {
        let t0 = self
            .ctx
            .inner
            .metrics
            .enabled()
            .then(std::time::Instant::now);
        let r = self.device_write_raw(slot, data);
        if let Some(t0) = t0 {
            self.ctx
                .inner
                .device_write_us
                .record(t0.elapsed().as_micros().min(u64::MAX as u128) as u64);
        }
        r
    }

    fn device_write_raw(&mut self, slot: u64, data: &[T]) -> Result<()> {
        let injected = consult_plan(&self.ctx, IoOp::Write, self.id)?;
        match &mut self.storage {
            Storage::Mem(blocks) => {
                let store = |blocks: &mut Vec<Box<[T]>>, payload: Box<[T]>| {
                    let s = slot as usize;
                    if s < blocks.len() {
                        blocks[s] = payload;
                    } else {
                        debug_assert_eq!(s, blocks.len());
                        blocks.push(payload);
                    }
                };
                match injected {
                    Injected::Torn(index) => {
                        // Persist a prefix, then fail; a retry overwrites
                        // the torn slot.
                        store(blocks, data[..data.len() / 2].to_vec().into_boxed_slice());
                        return Err(EmError::Transient {
                            op: IoOp::Write,
                            index,
                        });
                    }
                    Injected::Corrupt => {
                        let mut payload = data.to_vec();
                        payload[0] = flip_record_bit(&payload[0]);
                        store(blocks, payload.into_boxed_slice());
                    }
                    Injected::None => store(blocks, data.to_vec().into_boxed_slice()),
                }
                self.ctx.stats().record_write_block(self.id, slot, 0);
                self.ctx.stats().record_physical_write();
            }
            Storage::Disk { file, .. } => {
                use std::os::unix::fs::FileExt;
                let bytes = data.len() * T::BYTES;
                let cap_bytes = self.ctx.config().block_records_for_width(T::WORDS) * T::BYTES;
                let off = slot * ((cap_bytes + CHECKSUM_BYTES) as u64);
                SCRATCH.with_borrow_mut(|sc| {
                    sc.clear();
                    sc.resize(cap_bytes + CHECKSUM_BYTES, 0);
                    for (i, r) in data.iter().enumerate() {
                        r.write_bytes(&mut sc[i * T::BYTES..(i + 1) * T::BYTES]);
                    }
                    // Checksum covers the payload as it *should* be; a
                    // corrupting fault damages the payload after this point so
                    // the damage is detectable on read.
                    let sum = block_checksum(&sc[..bytes]);
                    sc[cap_bytes..].copy_from_slice(&sum.to_le_bytes());
                    match injected {
                        Injected::Torn(index) => {
                            // Persist only a payload prefix; the checksum slot
                            // keeps whatever it held (zeroes for a fresh block),
                            // so a read of the torn block reports Corrupt.
                            file.write_all_at(&sc[..bytes / 2], off)?;
                            return Err(EmError::Transient {
                                op: IoOp::Write,
                                index,
                            });
                        }
                        Injected::Corrupt => {
                            if bytes > 0 {
                                sc[0] ^= 1;
                            }
                        }
                        Injected::None => {}
                    }
                    file.write_all_at(&sc[..], off)?;
                    Ok(())
                })?;
                self.ctx
                    .stats()
                    .record_write_block(self.id, slot, bytes as u64);
                self.ctx.stats().record_physical_write();
                throttle_device(&self.ctx);
            }
        }
        Ok(())
    }

    /// Read block `block` into `buf` (cleared first). Charges one read I/O;
    /// retryable device failures are retried per the context's
    /// [`crate::RetryPolicy`].
    ///
    /// `buf` is a plain `Vec` so callers can pass the interior of a
    /// [`TrackedVec`] — the *caller* owns the memory charge for the buffer.
    pub fn read_block_into(&self, block: u64, buf: &mut Vec<T>) -> Result<()> {
        let nb = self.num_blocks();
        if block >= nb {
            return Err(EmError::OutOfBounds { block, blocks: nb });
        }
        let count = self.block_len(block);
        let cache = self.ctx.cache();
        // Oracle (paused) reads bypass the cache entirely — lookups and
        // population both — so verification scans leave the pool exactly as
        // if they never ran and physical counts stay reproducible.
        let use_cache = cache.is_enabled() && !self.ctx.stats().is_paused();
        if use_cache {
            if let Some(pin) = cache.get(self.id, block) {
                // Cache hit: one logical I/O is charged (the model's view is
                // unchanged), but no device transfer happens — the fault
                // plan is not consulted and `physical_reads` does not move.
                buf.clear();
                for i in 0..count {
                    buf.push(T::read_bytes(&pin[i * T::BYTES..]));
                }
                let bytes = match &self.storage {
                    Storage::Mem(_) => 0,
                    Storage::Disk { .. } => (count * T::BYTES) as u64,
                };
                self.ctx.stats().record_read_block(self.id, block, bytes);
                self.ctx.stats().record_cache_hit();
                return Ok(());
            }
            self.ctx.stats().record_cache_miss();
        }
        let ctx = self.ctx.clone();
        with_retries(&ctx, || self.device_read(block, count, buf))?;
        debug_assert_eq!(buf.len(), count);
        if use_cache {
            // Populate from the verified payload only (never from writes),
            // so a cached frame is always known-good bytes.
            let mut bytes = vec![0u8; count * T::BYTES];
            for (i, r) in buf.iter().enumerate() {
                r.write_bytes(&mut bytes[i * T::BYTES..(i + 1) * T::BYTES]);
            }
            cache.insert(self.id, block, &bytes);
        }
        Ok(())
    }

    /// Append `data` as the next block. Charges one write I/O; retryable
    /// device failures are retried per the context's [`crate::RetryPolicy`].
    ///
    /// `data` must contain between 1 and `B` records, and appending after a
    /// partial block is rejected (only the last block may be partial).
    pub fn append_block(&mut self, data: &[T]) -> Result<()> {
        let b = self.block_capacity();
        if data.is_empty() || data.len() > b {
            return Err(EmError::config(format!(
                "append_block: got {} records, block capacity is {b}",
                data.len()
            )));
        }
        if !self.len.is_multiple_of(b as u64) {
            return Err(EmError::config(
                "append_block: file ends in a partial block; only the last block may be partial",
            ));
        }
        let slot = self.len / b as u64;
        // Write-through: any cached frame for this slot (possible after a
        // `clear`) must not outlive the device write.
        self.ctx.cache().invalidate(self.id, slot);
        let ctx = self.ctx.clone();
        with_retries(&ctx, || self.device_write(slot, data))?;
        self.len += data.len() as u64;
        // Appends always occupy a fresh block slot on success.
        self.ctx.tracer().note_blocks_alloc(1);
        Ok(())
    }

    /// Remove all records (block storage is released / the backing file is
    /// truncated). Does not charge I/O — dropping data is free in the model.
    pub fn clear(&mut self) -> Result<()> {
        let released = self.num_blocks();
        match &mut self.storage {
            Storage::Mem(blocks) => blocks.clear(),
            Storage::Disk { file, .. } => file.set_len(0)?,
        }
        self.len = 0;
        self.ctx.cache().invalidate_file(self.id);
        self.ctx.tracer().note_blocks_free(released);
        Ok(())
    }

    /// A sequential, block-buffered reader over the whole file. Fails with
    /// [`crate::EmError::MemoryExceeded`] when the one-block buffer does
    /// not fit the (dynamic) strict budget.
    pub fn reader(&self) -> Result<Reader<'_, T>> {
        Reader::new(self)
    }

    /// A sequential reader starting at record offset `start` (0-based).
    /// The first read fetches the block containing `start` and skips
    /// within it, so positioning costs at most one extra I/O.
    pub fn reader_at(&self, start: u64) -> Result<Reader<'_, T>> {
        Reader::new_at(self, start.min(self.len))
    }

    /// Materialise the whole file into a host `Vec`, charging the read scan.
    ///
    /// Intended for tests, verification and small outputs; the resulting
    /// `Vec` is *not* metered.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut buf = self
            .ctx
            .try_tracked_vec::<T>(self.block_capacity(), "to_vec block")?;
        for blk in 0..self.num_blocks() {
            self.read_block_into(blk, &mut buf)?;
            out.extend_from_slice(&buf);
        }
        Ok(out)
    }

    /// Build a file from a slice, charging the write scan.
    pub fn from_slice(ctx: &EmContext, data: &[T]) -> Result<Self> {
        let mut w = ctx.writer::<T>()?;
        for &x in data {
            w.push(x)?;
        }
        w.finish()
    }
}

impl<T: Record> Drop for EmFile<T> {
    fn drop(&mut self) {
        if self.persistent() {
            // The backing file survives: its blocks stay in the gauge.
            return;
        }
        self.ctx.cache().invalidate_file(self.id);
        self.ctx.tracer().note_blocks_free(self.num_blocks());
        if let Storage::Disk { path, .. } = &self.storage {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Sequential block-buffered reader. Holds one block buffer, charged
/// `B * T::WORDS` words against the memory budget.
pub struct Reader<'a, T: Record> {
    file: &'a EmFile<T>,
    buf: TrackedVec<T>,
    next_block: u64,
    pos: usize,
    /// Records to skip inside the first block fetched (positioned readers).
    skip: usize,
}

impl<'a, T: Record> Reader<'a, T> {
    fn new(file: &'a EmFile<T>) -> Result<Self> {
        let b = file.block_capacity();
        Ok(Self {
            file,
            buf: file.ctx.try_tracked_vec::<T>(b, "reader block buffer")?,
            next_block: 0,
            pos: 0,
            skip: 0,
        })
    }

    fn new_at(file: &'a EmFile<T>, start: u64) -> Result<Self> {
        let cap = file.block_capacity() as u64;
        let mut r = Self::new(file)?;
        if start >= file.len() {
            // Position at end: mark every block consumed.
            r.next_block = file.num_blocks();
            return Ok(r);
        }
        r.next_block = start / cap;
        r.skip = (start % cap) as usize;
        Ok(r)
    }

    fn fill(&mut self) -> Result<bool> {
        if self.pos < self.buf.len() {
            return Ok(true);
        }
        if self.next_block >= self.file.num_blocks() {
            return Ok(false);
        }
        self.file.read_block_into(self.next_block, &mut self.buf)?;
        self.next_block += 1;
        self.pos = std::mem::take(&mut self.skip).min(self.buf.len());
        self.fill_tail_guard()
    }

    // A skip can exhaust the (partial) first block; continue to the next.
    fn fill_tail_guard(&mut self) -> Result<bool> {
        if self.pos < self.buf.len() {
            Ok(true)
        } else {
            self.fill()
        }
    }

    /// Next record, or `None` at end of file.
    // Fallible streaming, deliberately not Iterator (whose `next` cannot
    // surface `EmError`).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Result<Option<T>> {
        if !self.fill()? {
            return Ok(None);
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(r))
    }

    /// Peek at the next record without consuming it.
    pub fn peek(&mut self) -> Result<Option<T>> {
        if !self.fill()? {
            return Ok(None);
        }
        Ok(Some(self.buf[self.pos]))
    }

    /// Records remaining (including any buffered).
    pub fn remaining(&self) -> u64 {
        let consumed = (self.next_block.saturating_sub(1)) * self.file.block_capacity() as u64;
        let consumed = if self.next_block == 0 {
            0
        } else {
            consumed + self.pos as u64
        };
        self.file.len() - consumed.min(self.file.len())
    }
}

/// Buffered writer that builds a fresh file record by record. Holds one
/// block buffer, charged against the memory budget.
pub struct Writer<T: Record> {
    file: EmFile<T>,
    buf: TrackedVec<T>,
}

impl<T: Record> Writer<T> {
    pub(crate) fn new(ctx: EmContext) -> Result<Self> {
        let file = ctx.create_file::<T>()?;
        let buf = ctx.try_tracked_vec::<T>(file.block_capacity(), "writer block buffer")?;
        Ok(Self { file, buf })
    }

    /// Append one record.
    pub fn push(&mut self, rec: T) -> Result<()> {
        self.buf.push(rec);
        if self.buf.len() == self.file.block_capacity() {
            self.file.append_block(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Append every record of a slice.
    pub fn push_all(&mut self, recs: &[T]) -> Result<()> {
        for &r in recs {
            self.push(r)?;
        }
        Ok(())
    }

    /// Records written so far (including buffered ones).
    pub fn len(&self) -> u64 {
        self.file.len() + self.buf.len() as u64
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush the partial tail block and return the finished file.
    pub fn finish(mut self) -> Result<EmFile<T>> {
        if !self.buf.is_empty() {
            self.file.append_block(&self.buf)?;
            self.buf.clear();
        }
        Ok(self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmConfig;
    use crate::fault::{FaultPlan, RetryPolicy};
    use crate::record::KeyValue;

    fn mem_ctx() -> EmContext {
        EmContext::new_in_memory(EmConfig::tiny()) // B = 16
    }

    #[test]
    fn write_read_roundtrip_memory() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..100).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.len(), 100);
        assert_eq!(f.num_blocks(), 7); // 6 full blocks of 16 + partial of 4
        assert_eq!(f.to_vec().unwrap(), data);
    }

    #[test]
    fn write_read_roundtrip_disk() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let data: Vec<u64> = (0..1000).rev().collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.to_vec().unwrap(), data);
        let c = ctx.stats().snapshot();
        assert_eq!(c.writes, 63); // ceil(1000/16)
        assert_eq!(c.reads, 63);
        assert!(c.bytes_written >= 8000);
        assert_eq!(c.retries, 0);
        assert_eq!(c.corrupt_reads, 0);
    }

    #[test]
    fn disk_roundtrip_multiword_record() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let data: Vec<KeyValue> = (0..50)
            .map(|i| KeyValue {
                key: i,
                value: i * 10,
            })
            .collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.to_vec().unwrap(), data);
    }

    #[test]
    fn io_counting_exact() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..64).collect(); // exactly 4 blocks
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let after_write = ctx.stats().snapshot();
        assert_eq!(after_write.writes, 4);
        let _ = f.to_vec().unwrap();
        let c = ctx.stats().snapshot();
        assert_eq!(c.reads, 4);
    }

    #[test]
    fn out_of_bounds_read() {
        let ctx = mem_ctx();
        let f = EmFile::from_slice(&ctx, &[1u64, 2, 3]).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            f.read_block_into(1, &mut buf),
            Err(EmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn append_after_partial_rejected() {
        let ctx = mem_ctx();
        let mut f = ctx.create_file::<u64>().unwrap();
        f.append_block(&[1, 2, 3]).unwrap(); // partial (B = 16)
        assert!(f.append_block(&[4]).is_err());
    }

    #[test]
    fn append_oversized_rejected() {
        let ctx = mem_ctx();
        let mut f = ctx.create_file::<u64>().unwrap();
        let big: Vec<u64> = (0..17).collect();
        assert!(f.append_block(&big).is_err());
        assert!(f.append_block(&[]).is_err());
    }

    #[test]
    fn reader_sequential() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..40).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let mut r = f.reader().unwrap();
        let mut got = Vec::new();
        while let Some(x) = r.next().unwrap() {
            got.push(x);
        }
        assert_eq!(got, data);
    }

    #[test]
    fn reader_peek_does_not_consume() {
        let ctx = mem_ctx();
        let f = EmFile::from_slice(&ctx, &[10u64, 20, 30]).unwrap();
        let mut r = f.reader().unwrap();
        assert_eq!(r.peek().unwrap(), Some(10));
        assert_eq!(r.peek().unwrap(), Some(10));
        assert_eq!(r.next().unwrap(), Some(10));
        assert_eq!(r.next().unwrap(), Some(20));
        assert_eq!(r.next().unwrap(), Some(30));
        assert_eq!(r.peek().unwrap(), None);
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn reader_on_empty_file() {
        let ctx = mem_ctx();
        let f = ctx.create_file::<u64>().unwrap();
        let mut r = f.reader().unwrap();
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn reader_charges_one_io_per_block() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..48).collect(); // 3 blocks
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let before = ctx.stats().snapshot();
        let mut r = f.reader().unwrap();
        while r.next().unwrap().is_some() {}
        let d = ctx.stats().snapshot().since(&before);
        assert_eq!(d.reads, 3);
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn writer_buffer_flush_boundaries() {
        let ctx = mem_ctx();
        let mut w = ctx.writer::<u64>().unwrap();
        for i in 0..16 {
            w.push(i).unwrap();
        }
        // exactly one block must have been flushed
        assert_eq!(ctx.stats().snapshot().writes, 1);
        let f = w.finish().unwrap();
        assert_eq!(ctx.stats().snapshot().writes, 1); // nothing buffered remained
        assert_eq!(f.len(), 16);
    }

    #[test]
    fn writer_len_includes_buffered() {
        let ctx = mem_ctx();
        let mut w = ctx.writer::<u64>().unwrap();
        for i in 0..20 {
            w.push(i).unwrap();
        }
        assert_eq!(w.len(), 20);
    }

    #[test]
    fn clear_resets() {
        let ctx = mem_ctx();
        let mut f = EmFile::from_slice(&ctx, &[1u64, 2, 3]).unwrap();
        f.clear().unwrap();
        assert!(f.is_empty());
        assert_eq!(f.num_blocks(), 0);
    }

    #[test]
    fn disk_file_removed_on_drop() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let f = EmFile::from_slice(&ctx, &[1u64]).unwrap();
        let path = match &f.storage {
            Storage::Disk { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn persistent_file_survives_drop_and_reopens() {
        let base = std::env::temp_dir().join(format!("emcore-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let data: Vec<u64> = (0..100).rev().collect();
        let (id, len);
        {
            let ctx = EmContext::new_on_disk(EmConfig::tiny(), &base).unwrap();
            let f = EmFile::from_slice(&ctx, &data).unwrap();
            f.set_persistent(true);
            id = f.id();
            len = f.len();
        } // handle + context dropped: simulated process exit
        {
            let ctx = EmContext::new_on_disk(EmConfig::tiny(), &base).unwrap();
            let f = ctx.open_file::<u64>(id, len).unwrap();
            assert_eq!(f.to_vec().unwrap(), data);
            // Fresh ids must not collide with the reopened file.
            let g = ctx.create_file::<u64>().unwrap();
            assert!(g.id() > id);
            // Un-persisting restores normal drop semantics.
            f.set_persistent(false);
            let path = ctx.file_path(id).unwrap();
            drop(f);
            assert!(!path.exists());
        }
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn open_file_validates_size_and_backend() {
        let mem = mem_ctx();
        assert!(mem.open_file::<u64>(0, 1).is_err());
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let f = EmFile::from_slice(&ctx, &(0..10u64).collect::<Vec<_>>()).unwrap();
        f.set_persistent(true);
        let id = f.id();
        drop(f);
        // Asking for more records than the file can hold is rejected.
        assert!(ctx.open_file::<u64>(id, 1000).is_err());
        assert!(ctx.open_file::<u64>(id, 10).is_ok());
    }

    #[test]
    fn reader_memory_is_one_block() {
        let ctx = EmContext::new_in_memory_strict(EmConfig::tiny());
        let f = EmFile::from_slice(&ctx, &(0..64u64).collect::<Vec<_>>()).unwrap();
        ctx.mem().reset_peak();
        {
            let mut r = f.reader().unwrap();
            let _ = r.next().unwrap();
            assert_eq!(ctx.mem().current(), 16); // B records of 1 word
        }
        assert_eq!(ctx.mem().current(), 0);
    }

    #[test]
    fn reader_at_positions() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..50).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        for start in [0u64, 1, 15, 16, 17, 49, 50, 60] {
            let mut r = f.reader_at(start).unwrap();
            let mut got = Vec::new();
            while let Some(x) = r.next().unwrap() {
                got.push(x);
            }
            let want: Vec<u64> = (start.min(50)..50).collect();
            assert_eq!(got, want, "start = {start}");
        }
    }

    #[test]
    fn reader_at_costs_one_positioning_read() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..64).collect(); // 4 blocks of 16
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let before = ctx.stats().snapshot();
        let mut r = f.reader_at(20).unwrap(); // mid-block 1
        while r.next().unwrap().is_some() {}
        let d = ctx.stats().snapshot().since(&before);
        assert_eq!(d.reads, 3); // blocks 1, 2, 3
    }

    #[test]
    fn remaining_counts_down() {
        let ctx = mem_ctx();
        let f = EmFile::from_slice(&ctx, &(0..20u64).collect::<Vec<_>>()).unwrap();
        let mut r = f.reader().unwrap();
        assert_eq!(r.remaining(), 20);
        for _ in 0..5 {
            r.next().unwrap();
        }
        assert_eq!(r.remaining(), 15);
        while r.next().unwrap().is_some() {}
        assert_eq!(r.remaining(), 0);
    }

    // ------------------------------------------------------------------
    // Buffer-pool cache: logical vs physical accounting
    // ------------------------------------------------------------------

    #[test]
    fn without_cache_physical_equals_logical() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..64).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let _ = f.to_vec().unwrap();
        let _ = f.to_vec().unwrap();
        let c = ctx.stats().snapshot();
        assert_eq!(c.physical_reads, c.reads);
        assert_eq!(c.physical_writes, c.writes);
        assert_eq!(c.cache_hits, 0);
        assert_eq!(c.cache_misses, 0);
        assert_eq!(c.logical_ios(), c.physical_ios());
    }

    #[test]
    fn cache_hits_absorb_physical_reads_only() {
        for disk in [false, true] {
            let cfg = EmConfig::tiny().with_cache_blocks(8);
            let ctx = if disk {
                EmContext::new_on_disk_temp(cfg).unwrap()
            } else {
                EmContext::new_in_memory(cfg)
            };
            let data: Vec<u64> = (0..64).collect(); // 4 blocks
            let f = EmFile::from_slice(&ctx, &data).unwrap();
            assert_eq!(f.to_vec().unwrap(), data); // 4 misses
            assert_eq!(f.to_vec().unwrap(), data); // 4 hits
            let c = ctx.stats().snapshot();
            assert_eq!(c.reads, 8, "logical reads unchanged by the cache");
            assert_eq!(c.physical_reads, 4, "second scan served from cache");
            assert_eq!(c.cache_misses, 4);
            assert_eq!(c.cache_hits, 4);
            assert_eq!(c.reads, c.cache_hits + c.cache_misses);
            assert_eq!(c.physical_writes, c.writes, "writes are write-through");
            if disk {
                // Hit path charges the same payload bytes a physical read would.
                assert_eq!(c.bytes_read, 2 * 64 * 8);
            }
        }
    }

    #[test]
    fn cache_eviction_bounded_by_capacity() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny().with_cache_blocks(2));
        let data: Vec<u64> = (0..64).collect(); // 4 blocks > 2 frames
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let _ = f.to_vec().unwrap();
        let _ = f.to_vec().unwrap();
        let c = ctx.stats().snapshot();
        // Sequential scans over 4 blocks thrash a 2-frame pool: every read
        // is a miss, and the counters stay conservation-consistent.
        assert_eq!(c.reads, c.cache_hits + c.cache_misses);
        assert_eq!(c.physical_reads, c.cache_misses);
        assert!(ctx.cache().len() <= 2);
        assert!(ctx.cache().evictions() > 0);
    }

    #[test]
    fn clear_invalidates_cached_frames() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny().with_cache_blocks(8));
        let mut f = EmFile::from_slice(&ctx, &(0..16u64).collect::<Vec<_>>()).unwrap();
        let _ = f.to_vec().unwrap(); // populate
        f.clear().unwrap();
        f.append_block(&(100..116u64).collect::<Vec<_>>()).unwrap();
        assert_eq!(f.to_vec().unwrap(), (100..116u64).collect::<Vec<_>>());
    }

    #[test]
    fn corrupt_write_still_detected_with_cache() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny().with_cache_blocks(8)).unwrap();
        ctx.install_fault_plan(FaultPlan::new(0).fail_nth(0, crate::FaultKind::CorruptWrite));
        let data: Vec<u64> = (0..16).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap(); // silent!
        let err = f.to_vec().unwrap_err();
        assert!(matches!(err, EmError::Corrupt { block: 0, .. }));
        // The corrupt frame was never cached (population is read-only and
        // only from verified payloads), so rereads keep detecting it.
        assert!(f.to_vec().is_err());
    }

    #[test]
    fn oracle_reads_do_not_move_cache_counters() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny().with_cache_blocks(8));
        let data: Vec<u64> = (0..32).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let before = ctx.stats().snapshot();
        let got = ctx.oracle(|| f.to_vec()).unwrap();
        assert_eq!(got, data);
        assert_eq!(ctx.stats().snapshot(), before);
        assert_eq!(ctx.cache().len(), 0, "oracle reads must not warm the pool");
    }

    // ------------------------------------------------------------------
    // Device-layer faults
    // ------------------------------------------------------------------

    #[test]
    fn transient_write_surfaces_without_retry_policy() {
        let ctx = mem_ctx();
        ctx.install_fault_plan(FaultPlan::new(0).fail_nth(0, crate::FaultKind::TransientWrite));
        let mut f = ctx.create_file::<u64>().unwrap();
        assert!(matches!(
            f.append_block(&[1, 2, 3]),
            Err(EmError::Transient { .. })
        ));
        assert_eq!(f.len(), 0, "failed append must not extend the file");
    }

    #[test]
    fn transient_faults_cured_by_retries_memory() {
        let ctx = mem_ctx();
        let plan = FaultPlan::new(9).transient_rate(0.2);
        ctx.install_fault_plan(plan.clone());
        ctx.set_retry_policy(RetryPolicy::retries(8));
        let data: Vec<u64> = (0..200).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.to_vec().unwrap(), data);
        let c = ctx.stats().snapshot();
        assert_eq!(c.retries, plan.injected().transient_total());
        assert!(c.retries > 0, "rate 0.2 over ~26 I/Os should fire");
        assert!(ctx.backoff_ticks() > 0);
    }

    #[test]
    fn transient_faults_cured_by_retries_disk() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let plan = FaultPlan::new(5).transient_rate(0.2);
        ctx.install_fault_plan(plan.clone());
        ctx.set_retry_policy(RetryPolicy::retries(8));
        let data: Vec<u64> = (0..200).rev().collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.to_vec().unwrap(), data);
        let c = ctx.stats().snapshot();
        assert_eq!(c.retries, plan.injected().transient_total());
        // Fault-free counters are unchanged by the retry machinery.
        assert_eq!(c.writes, 13); // ceil(200/16)
        assert_eq!(c.reads, 13);
    }

    #[test]
    fn torn_write_retried_leaves_consistent_block_disk() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        ctx.install_fault_plan(FaultPlan::new(0).fail_nth(0, crate::FaultKind::TornWrite));
        ctx.set_retry_policy(RetryPolicy::retries(2));
        let data: Vec<u64> = (0..16).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.to_vec().unwrap(), data);
        assert_eq!(ctx.stats().snapshot().retries, 1);
    }

    #[test]
    fn torn_write_unretried_detected_on_read_disk() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let mut f = ctx.create_file::<u64>().unwrap();
        ctx.install_fault_plan(FaultPlan::new(0).fail_nth(0, crate::FaultKind::TornWrite));
        // No retry policy: the torn write surfaces as an error...
        let data: Vec<u64> = (0..16).collect();
        assert!(f.append_block(&data).is_err());
        // ...and the file was not extended, so the torn bytes are invisible.
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn corrupt_write_detected_on_read_disk() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        ctx.install_fault_plan(FaultPlan::new(0).fail_nth(0, crate::FaultKind::CorruptWrite));
        let data: Vec<u64> = (0..16).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap(); // silent!
        let err = f.to_vec().unwrap_err();
        assert!(matches!(err, EmError::Corrupt { block: 0, .. }));
        assert_eq!(ctx.stats().snapshot().corrupt_reads, 1);
    }

    #[test]
    fn corrupt_read_in_flight_cured_by_retry_disk() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let data: Vec<u64> = (0..16).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        ctx.install_fault_plan(FaultPlan::new(0).fail_nth(0, crate::FaultKind::CorruptRead));
        ctx.set_retry_policy(RetryPolicy::retries(2));
        assert_eq!(f.to_vec().unwrap(), data);
        let c = ctx.stats().snapshot();
        assert_eq!(c.corrupt_reads, 1);
        assert_eq!(c.retries, 1);
    }

    #[test]
    fn fatal_crashes_context_until_cleared() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..32).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let plan = FaultPlan::new(0).fatal_at(0);
        ctx.install_fault_plan(plan.clone());
        assert!(matches!(f.to_vec(), Err(EmError::Crashed)));
        assert!(matches!(f.to_vec(), Err(EmError::Crashed)));
        plan.clear_crash();
        assert_eq!(f.to_vec().unwrap(), data);
    }

    #[test]
    fn oracle_sees_true_data_under_faults() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..64).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        ctx.install_fault_plan(FaultPlan::new(0).transient_rate(1.0));
        let before = ctx.stats().snapshot();
        let got = ctx.oracle(|| f.to_vec()).unwrap();
        assert_eq!(got, data);
        // Oracles neither consume the schedule nor charge I/O.
        assert_eq!(ctx.stats().snapshot(), before);
    }
}
