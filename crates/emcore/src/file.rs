//! Typed block files, the disk objects of the EM model.
//!
//! An [`EmFile<T>`] is a sequence of records of `T` stored in blocks of `B`
//! records. Reads and writes happen at block granularity and each transfer
//! charges one I/O to the owning context's [`crate::IoStats`]. Two backends
//! exist — host-RAM blocks for fast simulation and real files (fixed-width
//! byte encoding) — with identical accounting.
//!
//! Files are append-only at the block level (only the last block may be
//! partial), which is all the algorithms in this workspace need; random
//! *reads* are allowed anywhere.

use std::cell::RefCell;
use std::fs::File;
use std::path::PathBuf;

use crate::ctx::{Backing, EmContext};
use crate::error::{EmError, Result};
use crate::memory::TrackedVec;
use crate::record::Record;

#[derive(Debug)]
enum Storage<T: Record> {
    Mem(Vec<Box<[T]>>),
    Disk {
        file: File,
        path: PathBuf,
        scratch: RefCell<Vec<u8>>,
    },
}

/// A sequence of records stored in `B`-record blocks on the context's
/// backing store.
#[derive(Debug)]
pub struct EmFile<T: Record> {
    ctx: EmContext,
    storage: Storage<T>,
    len: u64,
}

impl<T: Record> EmFile<T> {
    pub(crate) fn create(ctx: EmContext, id: u64) -> Result<Self> {
        let storage = match &ctx.inner.backing {
            Backing::Memory => Storage::Mem(Vec::new()),
            Backing::Directory { .. } => {
                let path = ctx.file_path(id).expect("directory backing has paths");
                let file = File::options()
                    .read(true)
                    .write(true)
                    .create(true)
                    .truncate(true)
                    .open(&path)?;
                Storage::Disk {
                    file,
                    path,
                    scratch: RefCell::new(Vec::new()),
                }
            }
        };
        Ok(Self {
            ctx,
            storage,
            len: 0,
        })
    }

    /// The owning context.
    #[inline]
    pub fn ctx(&self) -> &EmContext {
        &self.ctx
    }

    /// Records per block for this record type: `max(1, B / T::WORDS)` —
    /// a block holds `B` *words*, so wider records pack fewer per block.
    #[inline]
    pub fn block_capacity(&self) -> usize {
        self.ctx.config().block_records_for_width(T::WORDS)
    }

    /// Number of records in the file.
    #[inline]
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the file holds no records.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of blocks (the last may be partial).
    #[inline]
    pub fn num_blocks(&self) -> u64 {
        self.len.div_ceil(self.block_capacity() as u64)
    }

    /// Number of records stored in block `block`.
    #[inline]
    pub fn block_len(&self, block: u64) -> usize {
        let b = self.block_capacity() as u64;
        let start = block * b;
        debug_assert!(start < self.len || self.len == 0);
        (self.len - start).min(b) as usize
    }

    /// Read block `block` into `buf` (cleared first). Charges one read I/O.
    ///
    /// `buf` is a plain `Vec` so callers can pass the interior of a
    /// [`TrackedVec`] — the *caller* owns the memory charge for the buffer.
    pub fn read_block_into(&self, block: u64, buf: &mut Vec<T>) -> Result<()> {
        let nb = self.num_blocks();
        if block >= nb {
            return Err(EmError::OutOfBounds { block, blocks: nb });
        }
        let count = self.block_len(block);
        buf.clear();
        match &self.storage {
            Storage::Mem(blocks) => {
                buf.extend_from_slice(&blocks[block as usize]);
                self.ctx.stats().record_read(0);
            }
            Storage::Disk { file, scratch, .. } => {
                use std::os::unix::fs::FileExt;
                let bytes = count * T::BYTES;
                let mut sc = scratch.borrow_mut();
                sc.resize(bytes, 0);
                let off = block * (self.block_capacity() * T::BYTES) as u64;
                file.read_exact_at(&mut sc[..], off)?;
                for i in 0..count {
                    buf.push(T::read_bytes(&sc[i * T::BYTES..]));
                }
                self.ctx.stats().record_read(bytes as u64);
            }
        }
        debug_assert_eq!(buf.len(), count);
        Ok(())
    }

    /// Append `data` as the next block. Charges one write I/O.
    ///
    /// `data` must contain between 1 and `B` records, and appending after a
    /// partial block is rejected (only the last block may be partial).
    pub fn append_block(&mut self, data: &[T]) -> Result<()> {
        let b = self.block_capacity();
        if data.is_empty() || data.len() > b {
            return Err(EmError::config(format!(
                "append_block: got {} records, block capacity is {b}",
                data.len()
            )));
        }
        if self.len % b as u64 != 0 {
            return Err(EmError::config(
                "append_block: file ends in a partial block; only the last block may be partial",
            ));
        }
        match &mut self.storage {
            Storage::Mem(blocks) => {
                blocks.push(data.to_vec().into_boxed_slice());
                self.ctx.stats().record_write(0);
            }
            Storage::Disk { file, scratch, .. } => {
                use std::os::unix::fs::FileExt;
                let bytes = data.len() * T::BYTES;
                let mut sc = scratch.borrow_mut();
                sc.resize(bytes, 0);
                for (i, r) in data.iter().enumerate() {
                    r.write_bytes(&mut sc[i * T::BYTES..(i + 1) * T::BYTES]);
                }
                let off = (self.len / b as u64) * (b * T::BYTES) as u64;
                file.write_all_at(&sc[..], off)?;
                self.ctx.stats().record_write(bytes as u64);
            }
        }
        self.len += data.len() as u64;
        Ok(())
    }

    /// Remove all records (block storage is released / the backing file is
    /// truncated). Does not charge I/O — dropping data is free in the model.
    pub fn clear(&mut self) -> Result<()> {
        match &mut self.storage {
            Storage::Mem(blocks) => blocks.clear(),
            Storage::Disk { file, .. } => file.set_len(0)?,
        }
        self.len = 0;
        Ok(())
    }

    /// A sequential, block-buffered reader over the whole file.
    pub fn reader(&self) -> Reader<'_, T> {
        Reader::new(self)
    }

    /// A sequential reader starting at record offset `start` (0-based).
    /// The first read fetches the block containing `start` and skips
    /// within it, so positioning costs at most one extra I/O.
    pub fn reader_at(&self, start: u64) -> Reader<'_, T> {
        Reader::new_at(self, start.min(self.len))
    }

    /// Materialise the whole file into a host `Vec`, charging the read scan.
    ///
    /// Intended for tests, verification and small outputs; the resulting
    /// `Vec` is *not* metered.
    pub fn to_vec(&self) -> Result<Vec<T>> {
        let mut out = Vec::with_capacity(self.len as usize);
        let mut buf = self.ctx.tracked_vec::<T>(self.block_capacity(), "to_vec block");
        for blk in 0..self.num_blocks() {
            self.read_block_into(blk, &mut buf)?;
            out.extend_from_slice(&buf);
        }
        Ok(out)
    }

    /// Build a file from a slice, charging the write scan.
    pub fn from_slice(ctx: &EmContext, data: &[T]) -> Result<Self> {
        let mut w = ctx.writer::<T>();
        for &x in data {
            w.push(x)?;
        }
        w.finish()
    }
}

impl<T: Record> Drop for EmFile<T> {
    fn drop(&mut self) {
        if let Storage::Disk { path, .. } = &self.storage {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// Sequential block-buffered reader. Holds one block buffer, charged
/// `B * T::WORDS` words against the memory budget.
pub struct Reader<'a, T: Record> {
    file: &'a EmFile<T>,
    buf: TrackedVec<T>,
    next_block: u64,
    pos: usize,
    /// Records to skip inside the first block fetched (positioned readers).
    skip: usize,
}

impl<'a, T: Record> Reader<'a, T> {
    fn new(file: &'a EmFile<T>) -> Self {
        let b = file.block_capacity();
        Self {
            file,
            buf: file.ctx.tracked_vec::<T>(b, "reader block buffer"),
            next_block: 0,
            pos: 0,
            skip: 0,
        }
    }

    fn new_at(file: &'a EmFile<T>, start: u64) -> Self {
        let cap = file.block_capacity() as u64;
        let mut r = Self::new(file);
        if start >= file.len() {
            // Position at end: mark every block consumed.
            r.next_block = file.num_blocks();
            return r;
        }
        r.next_block = start / cap;
        r.skip = (start % cap) as usize;
        r
    }

    fn fill(&mut self) -> Result<bool> {
        if self.pos < self.buf.len() {
            return Ok(true);
        }
        if self.next_block >= self.file.num_blocks() {
            return Ok(false);
        }
        self.file.read_block_into(self.next_block, &mut self.buf)?;
        self.next_block += 1;
        self.pos = std::mem::take(&mut self.skip).min(self.buf.len());
        self.fill_tail_guard()
    }

    // A skip can exhaust the (partial) first block; continue to the next.
    fn fill_tail_guard(&mut self) -> Result<bool> {
        if self.pos < self.buf.len() {
            Ok(true)
        } else {
            self.fill()
        }
    }

    /// Next record, or `None` at end of file.
    pub fn next(&mut self) -> Result<Option<T>> {
        if !self.fill()? {
            return Ok(None);
        }
        let r = self.buf[self.pos];
        self.pos += 1;
        Ok(Some(r))
    }

    /// Peek at the next record without consuming it.
    pub fn peek(&mut self) -> Result<Option<T>> {
        if !self.fill()? {
            return Ok(None);
        }
        Ok(Some(self.buf[self.pos]))
    }

    /// Records remaining (including any buffered).
    pub fn remaining(&self) -> u64 {
        let consumed =
            (self.next_block.saturating_sub(1)) * self.file.block_capacity() as u64;
        let consumed = if self.next_block == 0 {
            0
        } else {
            consumed + self.pos as u64
        };
        self.file.len() - consumed.min(self.file.len())
    }
}

/// Buffered writer that builds a fresh file record by record. Holds one
/// block buffer, charged against the memory budget.
pub struct Writer<T: Record> {
    file: EmFile<T>,
    buf: TrackedVec<T>,
}

impl<T: Record> Writer<T> {
    pub(crate) fn new(ctx: EmContext) -> Self {
        let file = ctx.create_file::<T>().expect("file creation");
        let buf = ctx.tracked_vec::<T>(file.block_capacity(), "writer block buffer");
        Self { file, buf }
    }

    /// Append one record.
    pub fn push(&mut self, rec: T) -> Result<()> {
        self.buf.push(rec);
        if self.buf.len() == self.file.block_capacity() {
            self.file.append_block(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Append every record of a slice.
    pub fn push_all(&mut self, recs: &[T]) -> Result<()> {
        for &r in recs {
            self.push(r)?;
        }
        Ok(())
    }

    /// Records written so far (including buffered ones).
    pub fn len(&self) -> u64 {
        self.file.len() + self.buf.len() as u64
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flush the partial tail block and return the finished file.
    pub fn finish(mut self) -> Result<EmFile<T>> {
        if !self.buf.is_empty() {
            self.file.append_block(&self.buf)?;
            self.buf.clear();
        }
        Ok(self.file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmConfig;
    use crate::record::KeyValue;

    fn mem_ctx() -> EmContext {
        EmContext::new_in_memory(EmConfig::tiny()) // B = 16
    }

    #[test]
    fn write_read_roundtrip_memory() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..100).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.len(), 100);
        assert_eq!(f.num_blocks(), 7); // 6 full blocks of 16 + partial of 4
        assert_eq!(f.to_vec().unwrap(), data);
    }

    #[test]
    fn write_read_roundtrip_disk() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let data: Vec<u64> = (0..1000).rev().collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.to_vec().unwrap(), data);
        let c = ctx.stats().snapshot();
        assert_eq!(c.writes, 63); // ceil(1000/16)
        assert_eq!(c.reads, 63);
        assert!(c.bytes_written >= 8000);
    }

    #[test]
    fn disk_roundtrip_multiword_record() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let data: Vec<KeyValue> = (0..50).map(|i| KeyValue { key: i, value: i * 10 }).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        assert_eq!(f.to_vec().unwrap(), data);
    }

    #[test]
    fn io_counting_exact() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..64).collect(); // exactly 4 blocks
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let after_write = ctx.stats().snapshot();
        assert_eq!(after_write.writes, 4);
        let _ = f.to_vec().unwrap();
        let c = ctx.stats().snapshot();
        assert_eq!(c.reads, 4);
    }

    #[test]
    fn out_of_bounds_read() {
        let ctx = mem_ctx();
        let f = EmFile::from_slice(&ctx, &[1u64, 2, 3]).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            f.read_block_into(1, &mut buf),
            Err(EmError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn append_after_partial_rejected() {
        let ctx = mem_ctx();
        let mut f = ctx.create_file::<u64>().unwrap();
        f.append_block(&[1, 2, 3]).unwrap(); // partial (B = 16)
        assert!(f.append_block(&[4]).is_err());
    }

    #[test]
    fn append_oversized_rejected() {
        let ctx = mem_ctx();
        let mut f = ctx.create_file::<u64>().unwrap();
        let big: Vec<u64> = (0..17).collect();
        assert!(f.append_block(&big).is_err());
        assert!(f.append_block(&[]).is_err());
    }

    #[test]
    fn reader_sequential() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..40).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let mut r = f.reader();
        let mut got = Vec::new();
        while let Some(x) = r.next().unwrap() {
            got.push(x);
        }
        assert_eq!(got, data);
    }

    #[test]
    fn reader_peek_does_not_consume() {
        let ctx = mem_ctx();
        let f = EmFile::from_slice(&ctx, &[10u64, 20, 30]).unwrap();
        let mut r = f.reader();
        assert_eq!(r.peek().unwrap(), Some(10));
        assert_eq!(r.peek().unwrap(), Some(10));
        assert_eq!(r.next().unwrap(), Some(10));
        assert_eq!(r.next().unwrap(), Some(20));
        assert_eq!(r.next().unwrap(), Some(30));
        assert_eq!(r.peek().unwrap(), None);
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn reader_on_empty_file() {
        let ctx = mem_ctx();
        let f = ctx.create_file::<u64>().unwrap();
        let mut r = f.reader();
        assert_eq!(r.next().unwrap(), None);
    }

    #[test]
    fn reader_charges_one_io_per_block() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..48).collect(); // 3 blocks
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let before = ctx.stats().snapshot();
        let mut r = f.reader();
        while r.next().unwrap().is_some() {}
        let d = ctx.stats().snapshot().since(&before);
        assert_eq!(d.reads, 3);
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn writer_buffer_flush_boundaries() {
        let ctx = mem_ctx();
        let mut w = ctx.writer::<u64>();
        for i in 0..16 {
            w.push(i).unwrap();
        }
        // exactly one block must have been flushed
        assert_eq!(ctx.stats().snapshot().writes, 1);
        let f = w.finish().unwrap();
        assert_eq!(ctx.stats().snapshot().writes, 1); // nothing buffered remained
        assert_eq!(f.len(), 16);
    }

    #[test]
    fn writer_len_includes_buffered() {
        let ctx = mem_ctx();
        let mut w = ctx.writer::<u64>();
        for i in 0..20 {
            w.push(i).unwrap();
        }
        assert_eq!(w.len(), 20);
    }

    #[test]
    fn clear_resets() {
        let ctx = mem_ctx();
        let mut f = EmFile::from_slice(&ctx, &[1u64, 2, 3]).unwrap();
        f.clear().unwrap();
        assert!(f.is_empty());
        assert_eq!(f.num_blocks(), 0);
    }

    #[test]
    fn disk_file_removed_on_drop() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let f = EmFile::from_slice(&ctx, &[1u64]).unwrap();
        let path = match &f.storage {
            Storage::Disk { path, .. } => path.clone(),
            _ => unreachable!(),
        };
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }

    #[test]
    fn reader_memory_is_one_block() {
        let ctx = EmContext::new_in_memory_strict(EmConfig::tiny());
        let f = EmFile::from_slice(&ctx, &(0..64u64).collect::<Vec<_>>()).unwrap();
        ctx.mem().reset_peak();
        {
            let mut r = f.reader();
            let _ = r.next().unwrap();
            assert_eq!(ctx.mem().current(), 16); // B records of 1 word
        }
        assert_eq!(ctx.mem().current(), 0);
    }

    #[test]
    fn reader_at_positions() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..50).collect();
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        for start in [0u64, 1, 15, 16, 17, 49, 50, 60] {
            let mut r = f.reader_at(start);
            let mut got = Vec::new();
            while let Some(x) = r.next().unwrap() {
                got.push(x);
            }
            let want: Vec<u64> = (start.min(50)..50).collect();
            assert_eq!(got, want, "start = {start}");
        }
    }

    #[test]
    fn reader_at_costs_one_positioning_read() {
        let ctx = mem_ctx();
        let data: Vec<u64> = (0..64).collect(); // 4 blocks of 16
        let f = EmFile::from_slice(&ctx, &data).unwrap();
        let before = ctx.stats().snapshot();
        let mut r = f.reader_at(20); // mid-block 1
        while r.next().unwrap().is_some() {}
        let d = ctx.stats().snapshot().since(&before);
        assert_eq!(d.reads, 3); // blocks 1, 2, 3
    }

    #[test]
    fn remaining_counts_down() {
        let ctx = mem_ctx();
        let f = EmFile::from_slice(&ctx, &(0..20u64).collect::<Vec<_>>()).unwrap();
        let mut r = f.reader();
        assert_eq!(r.remaining(), 20);
        for _ in 0..5 {
            r.next().unwrap();
        }
        assert_eq!(r.remaining(), 15);
        while r.next().unwrap().is_some() {}
        assert_eq!(r.remaining(), 0);
    }
}
