//! Error type shared by the whole workspace.

/// Errors surfaced by the EM runtime and the algorithms built on it.
#[derive(Debug)]
pub enum EmError {
    /// Invalid model parameters (`M`, `B`) or invalid problem parameters
    /// (`K`, `a`, `b`, ranks out of range, ...).
    Config(String),
    /// The memory tracker detected a budget violation in strict mode.
    MemoryExceeded {
        /// Words requested to be live at the moment of the violation.
        requested: usize,
        /// The configured capacity `M` in words.
        capacity: usize,
        /// Description of the allocation that tipped over the budget.
        context: String,
    },
    /// An operation addressed a block or record outside a file's extent.
    OutOfBounds {
        /// The offending block index.
        block: u64,
        /// The number of blocks in the file.
        blocks: u64,
    },
    /// Underlying I/O failure from the file-backed device.
    Io(std::io::Error),
    /// A block failed checksum verification on read: the stored payload does
    /// not match the checksum written with it (torn write, bit rot, or an
    /// injected corruption fault).
    Corrupt {
        /// The block whose checksum failed.
        block: u64,
        /// The id of the file the block belongs to.
        file: u64,
    },
    /// A transient device failure (injected by a [`crate::FaultPlan`]); the
    /// same operation may succeed if retried.
    Transient {
        /// Which operation failed.
        op: crate::fault::IoOp,
        /// Global device-attempt index at which the fault fired.
        index: u64,
    },
    /// The simulated machine has crashed ([`crate::FaultKind::Fatal`]); all
    /// I/O fails until [`crate::FaultPlan::clear_crash`] models a restart.
    Crashed,
}

impl EmError {
    /// Construct a [`EmError::Config`] from anything stringy.
    pub fn config(msg: impl Into<String>) -> Self {
        EmError::Config(msg.into())
    }

    /// Whether retrying the same operation could succeed: transient faults
    /// and (in-flight) corrupt reads are retryable; crashes and persistent
    /// errors are not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, EmError::Transient { .. } | EmError::Corrupt { .. })
    }
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::Config(msg) => write!(f, "configuration error: {msg}"),
            EmError::MemoryExceeded {
                requested,
                capacity,
                context,
            } => write!(
                f,
                "memory budget exceeded: {requested} words live > M = {capacity} ({context})"
            ),
            EmError::OutOfBounds { block, blocks } => {
                write!(f, "block {block} out of bounds (file has {blocks} blocks)")
            }
            EmError::Io(e) => write!(f, "I/O error: {e}"),
            EmError::Corrupt { block, file } => {
                write!(f, "checksum mismatch reading block {block} of file {file}")
            }
            EmError::Transient { op, index } => {
                write!(f, "transient {op} failure at device attempt {index}")
            }
            EmError::Crashed => write!(f, "simulated crash: context requires restart"),
        }
    }
}

impl std::error::Error for EmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EmError {
    fn from(e: std::io::Error) -> Self {
        EmError::Io(e)
    }
}

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, EmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_config() {
        let e = EmError::config("bad K");
        assert!(format!("{e}").contains("bad K"));
    }

    #[test]
    fn display_memory() {
        let e = EmError::MemoryExceeded {
            requested: 100,
            capacity: 64,
            context: "test".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("100"));
        assert!(s.contains("64"));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::other("boom");
        let e = EmError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }
}
