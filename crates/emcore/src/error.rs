//! Error type shared by the whole workspace.

use std::sync::Arc;

/// Errors surfaced by the EM runtime and the algorithms built on it.
///
/// The type is [`Clone`] (the one non-cloneable payload,
/// [`std::io::Error`], is `Arc`-backed) so a server answering a coalesced
/// batch can hand the *same* typed error to every affected reply channel
/// instead of flattening it to a string.
#[derive(Debug, Clone)]
pub enum EmError {
    /// Invalid model parameters (`M`, `B`) or invalid problem parameters
    /// (`K`, `a`, `b`, ranks out of range, ...).
    Config(String),
    /// The memory tracker detected a budget violation in strict mode.
    MemoryExceeded {
        /// Words requested to be live at the moment of the violation.
        requested: usize,
        /// The configured capacity `M` in words.
        capacity: usize,
        /// Description of the allocation that tipped over the budget.
        context: String,
    },
    /// An operation addressed a block or record outside a file's extent.
    OutOfBounds {
        /// The offending block index.
        block: u64,
        /// The number of blocks in the file.
        blocks: u64,
    },
    /// Underlying I/O failure from the file-backed device.
    Io(Arc<std::io::Error>),
    /// A block failed checksum verification on read: the stored payload does
    /// not match the checksum written with it (torn write, bit rot, or an
    /// injected corruption fault).
    Corrupt {
        /// The block whose checksum failed.
        block: u64,
        /// The id of the file the block belongs to.
        file: u64,
    },
    /// A transient device failure (injected by a [`crate::FaultPlan`]); the
    /// same operation may succeed if retried.
    Transient {
        /// Which operation failed.
        op: crate::fault::IoOp,
        /// Global device-attempt index at which the fault fired.
        index: u64,
    },
    /// The simulated machine has crashed ([`crate::FaultKind::Fatal`]); all
    /// I/O fails until [`crate::FaultPlan::clear_crash`] models a restart.
    Crashed,
    /// A serving-layer circuit breaker is open for this dataset: recent
    /// batches failed fatally, so the server fails fast instead of paying
    /// for more doomed I/O. A background probe restores the dataset once
    /// the device answers again.
    Unhealthy {
        /// The quarantined dataset.
        dataset: String,
        /// Consecutive fatal batch failures that tripped the breaker.
        failures: u32,
    },
    /// A deadline expired: the query waited longer than its budget before
    /// the scheduler could (or would) run it, or a caller's
    /// `wait_timeout` elapsed before the answer arrived.
    DeadlineExceeded {
        /// The budget that was exceeded, in microseconds.
        deadline_us: u64,
        /// How long was actually waited, in microseconds.
        waited_us: u64,
    },
    /// A service endpoint is gone: the query server was shut down, its
    /// scheduler thread died, or a handle was used after `shutdown`.
    Unavailable {
        /// What exactly is unavailable.
        reason: String,
    },
    /// A protocol client announced (via the `hello` verb) a version the
    /// server does not speak. Typed so transports can negotiate or refuse
    /// cleanly instead of degenerating into a parse failure.
    ProtocolMismatch {
        /// The version the client announced.
        client: u32,
        /// The version the server speaks.
        server: u32,
    },
}

impl EmError {
    /// Construct a [`EmError::Config`] from anything stringy.
    pub fn config(msg: impl Into<String>) -> Self {
        EmError::Config(msg.into())
    }

    /// Construct a [`EmError::Unavailable`] from anything stringy.
    pub fn unavailable(reason: impl Into<String>) -> Self {
        EmError::Unavailable {
            reason: reason.into(),
        }
    }

    /// Whether retrying the same operation could succeed: transient faults
    /// and (in-flight) corrupt reads are retryable; crashes and persistent
    /// errors are not.
    pub fn is_retryable(&self) -> bool {
        matches!(self, EmError::Transient { .. } | EmError::Corrupt { .. })
    }

    /// Whether this error indicates a failing *device or dataset* (rather
    /// than a bad request): the class a serving-layer circuit breaker
    /// counts toward tripping. Request-shaped errors (`Config`,
    /// `OutOfBounds`, deadline/breaker rejections) are excluded — a caller
    /// asking for rank 0 forever must not poison the dataset for others.
    pub fn is_fault(&self) -> bool {
        matches!(
            self,
            EmError::Io(_) | EmError::Corrupt { .. } | EmError::Transient { .. } | EmError::Crashed
        )
    }
}

impl std::fmt::Display for EmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EmError::Config(msg) => write!(f, "configuration error: {msg}"),
            EmError::MemoryExceeded {
                requested,
                capacity,
                context,
            } => write!(
                f,
                "memory budget exceeded: {requested} words live > M = {capacity} ({context})"
            ),
            EmError::OutOfBounds { block, blocks } => {
                write!(f, "block {block} out of bounds (file has {blocks} blocks)")
            }
            EmError::Io(e) => write!(f, "I/O error: {e}"),
            EmError::Corrupt { block, file } => {
                write!(f, "checksum mismatch reading block {block} of file {file}")
            }
            EmError::Transient { op, index } => {
                write!(f, "transient {op} failure at device attempt {index}")
            }
            EmError::Crashed => write!(f, "simulated crash: context requires restart"),
            EmError::Unhealthy { dataset, failures } => write!(
                f,
                "dataset {dataset:?} is unhealthy ({failures} consecutive fatal failures); breaker open"
            ),
            EmError::DeadlineExceeded {
                deadline_us,
                waited_us,
            } => write!(
                f,
                "deadline exceeded: waited {waited_us} µs against a budget of {deadline_us} µs"
            ),
            EmError::Unavailable { reason } => write!(f, "service unavailable: {reason}"),
            EmError::ProtocolMismatch { client, server } => write!(
                f,
                "protocol version mismatch: client speaks v{client}, server speaks v{server}"
            ),
        }
    }
}

impl std::error::Error for EmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EmError::Io(e) => Some(e.as_ref()),
            _ => None,
        }
    }
}

impl From<std::io::Error> for EmError {
    fn from(e: std::io::Error) -> Self {
        EmError::Io(Arc::new(e))
    }
}

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, EmError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_config() {
        let e = EmError::config("bad K");
        assert!(format!("{e}").contains("bad K"));
    }

    #[test]
    fn display_memory() {
        let e = EmError::MemoryExceeded {
            requested: 100,
            capacity: 64,
            context: "test".into(),
        };
        let s = format!("{e}");
        assert!(s.contains("100"));
        assert!(s.contains("64"));
    }

    #[test]
    fn io_error_source_preserved() {
        let io = std::io::Error::other("boom");
        let e = EmError::from(io);
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn errors_clone_without_flattening() {
        let e = EmError::from(std::io::Error::other("disk on fire"));
        let c = e.clone();
        assert!(matches!(c, EmError::Io(_)));
        assert_eq!(format!("{c}"), format!("{e}"));
        let u = EmError::Unhealthy {
            dataset: "ds".into(),
            failures: 3,
        };
        assert!(matches!(u.clone(), EmError::Unhealthy { failures: 3, .. }));
    }

    #[test]
    fn fault_classification() {
        assert!(EmError::Crashed.is_fault());
        assert!(EmError::from(std::io::Error::other("x")).is_fault());
        assert!(EmError::Corrupt { block: 0, file: 1 }.is_fault());
        assert!(!EmError::config("rank 0").is_fault());
        assert!(!EmError::Unhealthy {
            dataset: "d".into(),
            failures: 1
        }
        .is_fault());
        assert!(!EmError::DeadlineExceeded {
            deadline_us: 1,
            waited_us: 2
        }
        .is_fault());
        let pm = EmError::ProtocolMismatch {
            client: 9,
            server: 1,
        };
        assert!(!pm.is_fault(), "a confused client must not trip breakers");
        assert!(!pm.is_retryable());
        let s = format!("{pm}");
        assert!(s.contains("v9") && s.contains("v1"), "{s}");
    }
}
