//! Trace analysis: reconstruct a span tree from recorded events and render
//! phase-tree tables, per-file access summaries, and flamegraph-ready
//! folded stacks.
//!
//! This is the read side of [`crate::trace`]: feed it the events of a
//! [`crate::RingSink`] or the lines of a JSONL trace file and it rebuilds
//! the structure a run emitted. The `trace_report` bin in the bench crate
//! is a thin CLI over this module.

use std::collections::BTreeMap;

use crate::error::{EmError, Result};
use crate::stats::Counters;
use crate::trace::{FileAccess, PointKind, TraceEvent};

/// One reconstructed span.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span id from the trace.
    pub id: u64,
    /// Parent span id (0 for roots).
    pub parent: u64,
    /// Phase name.
    pub name: String,
    /// Open timestamp, microseconds since trace begin.
    pub open_us: u64,
    /// Wall-clock duration in microseconds (0 if never closed).
    pub dur_us: u64,
    /// Counter delta charged while open, inclusive of children (zero if
    /// never closed).
    pub delta: Counters,
    /// Whether a matching close event was seen.
    pub closed: bool,
    /// Indices into [`TraceReport::spans`] of this span's children, in
    /// open order.
    pub children: Vec<usize>,
    /// Retry point events attributed to this span.
    pub retries: u64,
    /// Fault-injection point events attributed to this span.
    pub faults: u64,
    /// Journal-commit point events attributed to this span.
    pub journal_commits: u64,
    /// Work-unit-redo point events attributed to this span.
    pub redo_events: u64,
    /// Total I/Os reported by those redo events.
    pub redo_ios: u64,
    /// Memory-governor point events (squeeze/restore/lease traffic)
    /// attributed to this span.
    pub governor_events: u64,
}

/// A parsed trace: span tree, per-file access summaries, and trailer data.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// All spans, in open order.
    pub spans: Vec<SpanNode>,
    /// Indices of root spans (parent 0).
    pub roots: Vec<usize>,
    /// Per-file access summaries from the trace trailer.
    pub files: Vec<(u64, FileAccess)>,
    /// All point events, in order, with their owning span id.
    pub points: Vec<(u64, PointKind)>,
    /// Machine geometry from the begin event: `(M, B)` in records.
    pub machine: Option<(u64, u64)>,
    /// Final `(live, peak)` disk-blocks gauge from the end event.
    pub blocks: Option<(u64, u64)>,
    /// Whether the end event was seen (a missing one means the traced
    /// process stopped before `finish_trace`).
    pub finished: bool,
}

impl TraceReport {
    /// Build a report from in-memory events (e.g. a [`crate::RingSink`]).
    pub fn from_events(events: &[TraceEvent]) -> Self {
        let mut r = TraceReport::default();
        let mut index: BTreeMap<u64, usize> = BTreeMap::new();
        for ev in events {
            match ev {
                TraceEvent::Begin { mem, block, .. } => {
                    r.machine = Some((*mem, *block));
                }
                TraceEvent::SpanOpen {
                    id,
                    parent,
                    name,
                    t_us,
                } => {
                    let idx = r.spans.len();
                    r.spans.push(SpanNode {
                        id: *id,
                        parent: *parent,
                        name: name.clone(),
                        open_us: *t_us,
                        dur_us: 0,
                        delta: Counters::default(),
                        closed: false,
                        children: Vec::new(),
                        retries: 0,
                        faults: 0,
                        journal_commits: 0,
                        governor_events: 0,
                        redo_events: 0,
                        redo_ios: 0,
                    });
                    index.insert(*id, idx);
                    match index.get(parent).copied() {
                        Some(p) => r.spans[p].children.push(idx),
                        None => r.roots.push(idx),
                    }
                }
                TraceEvent::SpanClose {
                    id, dur_us, delta, ..
                } => {
                    if let Some(&idx) = index.get(id) {
                        let s = &mut r.spans[idx];
                        s.dur_us = *dur_us;
                        s.delta = *delta;
                        s.closed = true;
                    }
                }
                TraceEvent::Point { kind, span, .. } => {
                    r.points.push((*span, kind.clone()));
                    if let Some(&idx) = index.get(span) {
                        let s = &mut r.spans[idx];
                        match kind {
                            PointKind::Retry { .. } => s.retries += 1,
                            PointKind::Fault { .. } => s.faults += 1,
                            PointKind::JournalCommit { .. } => s.journal_commits += 1,
                            PointKind::WorkUnitRedo { ios } => {
                                s.redo_events += 1;
                                s.redo_ios += ios;
                            }
                            PointKind::Governor { .. } => s.governor_events += 1,
                        }
                    }
                }
                TraceEvent::FileSummary { file, access } => {
                    r.files.push((*file, (**access).clone()));
                }
                TraceEvent::End {
                    live_blocks,
                    peak_blocks,
                    ..
                } => {
                    r.blocks = Some((*live_blocks, *peak_blocks));
                    r.finished = true;
                }
            }
        }
        r
    }

    /// Parse JSONL text (one event per line; blank lines ignored).
    pub fn parse_jsonl(text: &str) -> Result<Self> {
        let mut events = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev = TraceEvent::parse(line)
                .map_err(|e| EmError::config(format!("trace line {}: {e}", i + 1)))?;
            events.push(ev);
        }
        Ok(Self::from_events(&events))
    }

    /// Load and parse a JSONL trace file.
    pub fn load(path: impl AsRef<std::path::Path>) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::parse_jsonl(&text)
    }

    /// Spans that never closed (crash, or a phase leak in the traced code).
    pub fn unclosed(&self) -> Vec<&SpanNode> {
        self.spans.iter().filter(|s| !s.closed).collect()
    }

    /// Sum of the deltas of all *root* spans. Because a span's delta is
    /// inclusive of its children, this is the total charged I/O of the
    /// traced run — the conservation check against an [`crate::IoStats`]
    /// snapshot.
    pub fn root_totals(&self) -> Counters {
        self.roots.iter().fold(Counters::default(), |acc, &i| {
            acc.plus(&self.spans[i].delta)
        })
    }

    /// Counter delta exclusive to `idx`: its own delta minus its closed
    /// children's.
    fn exclusive_delta(&self, idx: usize) -> Counters {
        let mut child_sum = Counters::default();
        for &c in &self.spans[idx].children {
            child_sum = child_sum.plus(&self.spans[c].delta);
        }
        self.spans[idx].delta.since(&child_sum)
    }

    /// Render the span tree as a table: one row per span, indented by
    /// depth, with I/Os, % of parent I/O, wall time, % of parent time, and
    /// fault/journal/redo annotations.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>10} {:>8} {:>8} {:>6} {:>10} {:>6}  {}\n",
            "span", "I/Os", "reads", "writes", "io%", "time", "t%", "events"
        ));
        for &root in &self.roots {
            self.render_node(&mut out, root, 0, None);
        }
        if let Some((live, peak)) = self.blocks {
            out.push_str(&format!("\ndisk blocks: {live} live at end, {peak} peak\n"));
        }
        let unclosed = self.unclosed();
        if !unclosed.is_empty() {
            out.push_str(&format!(
                "\nWARNING: {} unclosed span(s): {}\n",
                unclosed.len(),
                unclosed
                    .iter()
                    .map(|s| s.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
        out
    }

    fn render_node(&self, out: &mut String, idx: usize, depth: usize, parent: Option<usize>) {
        let s = &self.spans[idx];
        let label = format!("{}{}", "  ".repeat(depth), s.name);
        let label = if s.closed {
            label
        } else {
            format!("{label} [UNCLOSED]")
        };
        let pct = |part: u64, whole: u64| -> String {
            if whole == 0 {
                "-".into()
            } else {
                format!("{:.1}", 100.0 * part as f64 / whole as f64)
            }
        };
        let (io_pct, t_pct) = match parent {
            Some(p) => (
                pct(s.delta.total_ios(), self.spans[p].delta.total_ios()),
                pct(s.dur_us, self.spans[p].dur_us),
            ),
            None => ("100.0".into(), "100.0".into()),
        };
        let mut notes = Vec::new();
        if s.retries > 0 {
            notes.push(format!("{} retries", s.retries));
        }
        if s.faults > 0 {
            notes.push(format!("{} faults", s.faults));
        }
        if s.journal_commits > 0 {
            notes.push(format!("{} jrnl", s.journal_commits));
        }
        if s.redo_events > 0 {
            notes.push(format!("{} redo ({} I/Os)", s.redo_events, s.redo_ios));
        }
        out.push_str(&format!(
            "{:<44} {:>10} {:>8} {:>8} {:>6} {:>9.3}ms {:>6}  {}\n",
            label,
            s.delta.total_ios(),
            s.delta.reads,
            s.delta.writes,
            io_pct,
            s.dur_us as f64 / 1000.0,
            t_pct,
            notes.join(", ")
        ));
        for &c in &s.children.clone() {
            self.render_node(out, c, depth + 1, Some(idx));
        }
    }

    /// Render the per-file access summary table.
    pub fn render_files(&self) -> String {
        let mut out = String::new();
        if self.files.is_empty() {
            out.push_str("no per-file access data (trace not finished?)\n");
            return out;
        }
        out.push_str(&format!(
            "{:>6} {:>9} {:>9} {:>7} {:>9} {:>10} {:>10}\n",
            "file", "reads", "writes", "seq%", "seeks", "mean seek", "max seek"
        ));
        for (id, a) in &self.files {
            out.push_str(&format!(
                "{:>6} {:>9} {:>9} {:>6.1}% {:>9} {:>10.1} {:>10}\n",
                id,
                a.reads,
                a.writes,
                100.0 * a.sequential_fraction(),
                a.seeks,
                a.mean_seek(),
                a.max_seek
            ));
        }
        out
    }

    /// Flamegraph-ready folded stacks: one line per span with nonzero
    /// exclusive I/O, `root;child;leaf <ios>`. Feed to any standard
    /// flamegraph renderer.
    pub fn folded_stacks(&self) -> String {
        let mut out = String::new();
        let mut path: Vec<&str> = Vec::new();
        for &root in &self.roots {
            self.fold_node(&mut out, root, &mut path);
        }
        out
    }

    fn fold_node<'a>(&'a self, out: &mut String, idx: usize, path: &mut Vec<&'a str>) {
        let s = &self.spans[idx];
        path.push(&s.name);
        let excl = self.exclusive_delta(idx).total_ios();
        if excl > 0 {
            out.push_str(&path.join(";"));
            out.push_str(&format!(" {excl}\n"));
        }
        for &c in &s.children {
            self.fold_node(out, c, path);
        }
        path.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::IoOp;

    fn ev_open(id: u64, parent: u64, name: &str) -> TraceEvent {
        TraceEvent::SpanOpen {
            id,
            parent,
            name: name.into(),
            t_us: id * 10,
        }
    }

    fn ev_close(id: u64, reads: u64, writes: u64) -> TraceEvent {
        TraceEvent::SpanClose {
            id,
            t_us: 1000,
            dur_us: 100,
            delta: Counters {
                reads,
                writes,
                ..Counters::default()
            },
        }
    }

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Begin {
                t_us: 0,
                mem: 4096,
                block: 64,
            },
            ev_open(1, 0, "root"),
            ev_open(2, 1, "sample"),
            ev_close(2, 10, 0),
            ev_open(3, 1, "distribute"),
            TraceEvent::Point {
                kind: PointKind::Retry { op: IoOp::Write },
                span: 3,
                t_us: 500,
            },
            TraceEvent::Point {
                kind: PointKind::WorkUnitRedo { ios: 7 },
                span: 3,
                t_us: 600,
            },
            ev_close(3, 20, 15),
            ev_close(1, 33, 15),
            TraceEvent::End {
                t_us: 1100,
                live_blocks: 5,
                peak_blocks: 40,
            },
        ]
    }

    #[test]
    fn tree_reconstruction_and_totals() {
        let r = TraceReport::from_events(&sample_events());
        assert_eq!(r.roots.len(), 1);
        assert_eq!(r.spans.len(), 3);
        let root = &r.spans[r.roots[0]];
        assert_eq!(root.name, "root");
        assert_eq!(root.children.len(), 2);
        assert_eq!(r.root_totals().total_ios(), 48);
        assert!(r.unclosed().is_empty());
        assert!(r.finished);
        assert_eq!(r.machine, Some((4096, 64)));
        assert_eq!(r.blocks, Some((5, 40)));
        let dist = &r.spans[root.children[1]];
        assert_eq!(dist.retries, 1);
        assert_eq!(dist.redo_events, 1);
        assert_eq!(dist.redo_ios, 7);
    }

    #[test]
    fn jsonl_roundtrip_matches_in_memory() {
        let events = sample_events();
        let text: String = events.iter().map(|e| e.to_json() + "\n").collect();
        let a = TraceReport::from_events(&events);
        let b = TraceReport::parse_jsonl(&text).unwrap();
        assert_eq!(a.root_totals(), b.root_totals());
        assert_eq!(a.spans.len(), b.spans.len());
        assert_eq!(a.points.len(), b.points.len());
    }

    #[test]
    fn unclosed_spans_flagged() {
        let events = vec![ev_open(1, 0, "root"), ev_open(2, 1, "leaked")];
        let r = TraceReport::from_events(&events);
        assert_eq!(r.unclosed().len(), 2);
        assert!(!r.finished);
        let rendered = r.render_tree();
        assert!(rendered.contains("UNCLOSED"), "{rendered}");
    }

    #[test]
    fn folded_stacks_exclusive_weights() {
        let r = TraceReport::from_events(&sample_events());
        let folded = r.folded_stacks();
        // root has 48 inclusive, 10 + 35 in children → 3 exclusive.
        assert!(folded.contains("root 3\n"), "{folded}");
        assert!(folded.contains("root;sample 10\n"), "{folded}");
        assert!(folded.contains("root;distribute 35\n"), "{folded}");
    }

    #[test]
    fn render_tree_percentages() {
        let r = TraceReport::from_events(&sample_events());
        let t = r.render_tree();
        assert!(t.contains("root"), "{t}");
        // distribute is 35 of root's 48 I/Os ≈ 72.9%.
        assert!(t.contains("72.9"), "{t}");
        assert!(t.contains("5 live at end, 40 peak"), "{t}");
    }

    #[test]
    fn parse_error_carries_line_number() {
        let err = TraceReport::parse_jsonl("{\"e\":\"begin\",\"t_us\":0}\nnot json\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }
}
