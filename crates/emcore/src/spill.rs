//! Spillable in-memory arrays.
//!
//! The intermixed-selection recursion (paper §4.1) keeps `O(L)` words of
//! per-group state (`t_i`, `μ_i`, `θ_i`). A literal implementation would
//! hold one such state set per live recursion level — `O(L · depth)` words,
//! which busts the memory budget for `L = Θ(M)`. A [`SpillVec`] lets the
//! parent write its state to disk (`O(L/B)` I/Os) before recursing and read
//! it back afterwards, preserving both the `O(|D|/B)` I/O bound (the spill
//! cost telescopes geometrically with `|D|`) and `O(L)` peak memory. See
//! DESIGN.md, "substitutions".

use crate::ctx::EmContext;
use crate::error::Result;
use crate::file::EmFile;
use crate::memory::TrackedVec;
use crate::record::Record;

enum State<T: Record> {
    InMem(TrackedVec<T>),
    Spilled(EmFile<T>),
}

/// An array of records that is either memory-resident (metered) or spilled
/// to a block file on the context's backing store.
pub struct SpillVec<T: Record> {
    ctx: EmContext,
    state: State<T>,
    context: String,
}

impl<T: Record> SpillVec<T> {
    /// An empty, memory-resident array with the given reserved capacity.
    /// A strict budget violation comes back as
    /// [`crate::EmError::MemoryExceeded`].
    pub fn with_capacity(ctx: &EmContext, cap: usize, context: &str) -> Result<Self> {
        Ok(Self {
            ctx: ctx.clone(),
            state: State::InMem(ctx.try_tracked_vec::<T>(cap, context)?),
            context: context.to_string(),
        })
    }

    /// Wrap an existing tracked buffer.
    pub fn from_tracked(ctx: &EmContext, vec: TrackedVec<T>, context: &str) -> Self {
        Self {
            ctx: ctx.clone(),
            state: State::InMem(vec),
            context: context.to_string(),
        }
    }

    /// Whether the data currently lives in memory.
    pub fn is_resident(&self) -> bool {
        matches!(self.state, State::InMem(_))
    }

    /// Number of records (resident or spilled).
    pub fn len(&self) -> usize {
        match &self.state {
            State::InMem(v) => v.len(),
            State::Spilled(f) => f.len() as usize,
        }
    }

    /// Whether the array is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a record. Panics if spilled.
    pub fn push(&mut self, rec: T) {
        match &mut self.state {
            State::InMem(v) => v.push(rec),
            State::Spilled(_) => panic!("push on spilled SpillVec ({})", self.context), // memory-gate: allow (API-misuse guard)
        }
    }

    /// Borrow the resident data. Panics if spilled.
    pub fn as_slice(&self) -> &[T] {
        match &self.state {
            State::InMem(v) => v,
            State::Spilled(_) => panic!("as_slice on spilled SpillVec ({})", self.context), // memory-gate: allow (API-misuse guard)
        }
    }

    /// Mutably borrow the resident data. Panics if spilled.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.state {
            State::InMem(v) => v,
            State::Spilled(_) => panic!("as_mut_slice on spilled SpillVec ({})", self.context), // memory-gate: allow (API-misuse guard)
        }
    }

    /// Write the data to a block file and release the memory charge.
    /// Charges `ceil(len/B)` write I/Os. No-op if already spilled.
    pub fn spill(&mut self) -> Result<()> {
        if let State::InMem(v) = &self.state {
            let mut w = self.ctx.writer::<T>()?;
            w.push_all(v)?;
            let file = w.finish()?;
            self.state = State::Spilled(file);
        }
        Ok(())
    }

    /// Read the data back into a fresh metered buffer. Charges
    /// `ceil(len/B)` read I/Os. No-op if already resident.
    pub fn unspill(&mut self) -> Result<()> {
        if let State::Spilled(f) = &self.state {
            let n = f.len() as usize;
            let mut v = self.ctx.try_tracked_vec::<T>(n, &self.context)?;
            let mut r = f.reader()?;
            while let Some(x) = r.next()? {
                v.push(x);
            }
            self.state = State::InMem(v);
        }
        Ok(())
    }

    /// Consume and return the resident data as a plain `Vec` (unspills
    /// first if needed).
    pub fn into_vec(mut self) -> Result<Vec<T>> {
        self.unspill()?;
        match self.state {
            State::InMem(v) => Ok(v.into_inner()),
            State::Spilled(_) => unreachable!("just unspilled"), // memory-gate: allow (guarded by unspill above)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmConfig;

    #[test]
    fn spill_and_unspill_roundtrip() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut sv = SpillVec::<u64>::with_capacity(&ctx, 50, "test").unwrap();
        for i in 0..50 {
            sv.push(i * 3);
        }
        let before_mem = ctx.mem().current();
        assert!(before_mem >= 50);
        sv.spill().unwrap();
        assert!(!sv.is_resident());
        assert_eq!(sv.len(), 50);
        assert!(ctx.mem().current() < before_mem);
        sv.unspill().unwrap();
        assert!(sv.is_resident());
        assert_eq!(sv.as_slice(), (0..50).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn spill_charges_io() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny()); // B = 16
        let mut sv = SpillVec::<u64>::with_capacity(&ctx, 32, "test").unwrap();
        for i in 0..32 {
            sv.push(i);
        }
        let before = ctx.stats().snapshot();
        sv.spill().unwrap();
        assert_eq!(ctx.stats().snapshot().since(&before).writes, 2);
        sv.unspill().unwrap();
        assert_eq!(ctx.stats().snapshot().since(&before).reads, 2);
    }

    #[test]
    fn double_spill_is_noop() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut sv = SpillVec::<u64>::with_capacity(&ctx, 4, "test").unwrap();
        sv.push(1);
        sv.spill().unwrap();
        let snap = ctx.stats().snapshot();
        sv.spill().unwrap();
        assert_eq!(ctx.stats().snapshot(), snap);
    }

    #[test]
    fn into_vec_unspills() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut sv = SpillVec::<u64>::with_capacity(&ctx, 4, "test").unwrap();
        sv.push(9);
        sv.push(8);
        sv.spill().unwrap();
        assert_eq!(sv.into_vec().unwrap(), vec![9, 8]);
    }

    #[test]
    #[should_panic(expected = "push on spilled")]
    fn push_after_spill_panics() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut sv = SpillVec::<u64>::with_capacity(&ctx, 4, "test").unwrap();
        sv.spill().unwrap();
        sv.push(1);
    }

    #[test]
    fn empty_spillvec() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut sv = SpillVec::<u64>::with_capacity(&ctx, 0, "test").unwrap();
        assert!(sv.is_empty());
        sv.spill().unwrap();
        sv.unspill().unwrap();
        assert!(sv.is_empty());
    }
}
