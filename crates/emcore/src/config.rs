//! External-memory model parameters.
//!
//! The classical I/O model of Aggarwal and Vitter: a machine with an internal
//! memory of `M` items and a disk formatted into blocks of `B` items, with
//! `M >= 2B`. One I/O transfers one block between disk and memory.
//!
//! Throughout this workspace `M` and `B` are expressed in *records* of the
//! file being accessed, see the crate-level documentation for why this is a
//! faithful rendering of the paper's word-based accounting.

use crate::error::{EmError, Result};

/// Parameters of the external-memory model: memory capacity `M` and block
/// size `B`, both counted in records.
///
/// Invariants enforced at construction:
/// * `B >= 1`
/// * `M >= 2 * B` (the model's minimum: at least two blocks fit in memory)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    mem_capacity: usize,
    block_size: usize,
    workers: usize,
    cache_blocks: usize,
    device_latency_us: u64,
}

impl EmConfig {
    /// Create a configuration with memory capacity `m` and block size `b`,
    /// one worker, and the block cache disabled. Use [`EmConfig::builder`]
    /// (or the `with_*` methods) to enable parallelism or caching.
    ///
    /// The `EM_TEST_WORKERS` environment variable, when set to an integer
    /// ≥ 1, overrides the *default* worker count. This is a CI hook: the
    /// parallel sort is I/O-identical to the sequential one, so the whole
    /// test suite is run twice — at `workers = 1` and `workers = 4` — and
    /// must pass unchanged. Explicit [`EmConfig::with_workers`] or
    /// [`EmConfigBuilder::workers`] settings always win over the variable.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::Config`] if `b == 0` or `m < 2 * b`.
    pub fn new(m: usize, b: usize) -> Result<Self> {
        if b == 0 {
            return Err(EmError::config("block size B must be at least 1"));
        }
        if m < 2 * b {
            return Err(EmError::config(format!(
                "memory capacity M={m} must be at least 2B={}",
                2 * b
            )));
        }
        let workers = std::env::var("EM_TEST_WORKERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&w: &usize| w >= 1)
            .unwrap_or(1);
        Ok(Self {
            mem_capacity: m,
            block_size: b,
            workers,
            cache_blocks: 0,
            device_latency_us: 0,
        })
    }

    /// Start a fluent [`EmConfigBuilder`] with the default geometry
    /// (`M = 4096`, `B = 64`, one worker, cache disabled).
    pub fn builder() -> EmConfigBuilder {
        EmConfigBuilder::default()
    }

    /// This configuration with `workers` worker threads (clamped to ≥ 1).
    /// Parallel algorithms (e.g. `emsort`'s parallel external sort) split
    /// their work across this many threads; `workers = 1` is the sequential
    /// fast path and reproduces single-threaded I/O counts exactly.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// This configuration with a buffer-pool block cache of `cache_blocks`
    /// blocks (`0` disables the cache — the default, which keeps every
    /// logical I/O physical).
    pub fn with_cache_blocks(mut self, cache_blocks: usize) -> Self {
        self.cache_blocks = cache_blocks;
        self
    }

    /// Worker threads available to parallel algorithms (≥ 1).
    #[inline]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Buffer-pool capacity in blocks; `0` means the cache is disabled.
    #[inline]
    pub fn cache_blocks(&self) -> usize {
        self.cache_blocks
    }

    /// This configuration with a simulated per-transfer device latency of
    /// `us` microseconds on the disk backend (`0` — the default — disables
    /// the throttle).
    ///
    /// The disk backend normally lands in the OS page cache, so a "block
    /// transfer" costs a memcpy and wall-clock time says nothing about how
    /// the algorithm would behave against a device where a transfer takes
    /// tens of microseconds. With a nonzero latency every *physical* disk
    /// block transfer additionally sleeps this long, making wall-clock a
    /// faithful proxy for the I/O model: overlapped transfers (prefetch /
    /// write-behind threads) genuinely reclaim the latency, and block-cache
    /// hits — which do no physical transfer — genuinely avoid it. Logical
    /// and physical I/O *counts* are unaffected.
    ///
    /// Note `std::thread::sleep` granularity puts a floor (typically
    /// 50–100 µs) under the effective latency; treat small values as "at
    /// least this much".
    pub fn with_device_latency_us(mut self, us: u64) -> Self {
        self.device_latency_us = us;
        self
    }

    /// Simulated device latency per physical disk transfer, in
    /// microseconds; `0` means transfers run at page-cache speed.
    #[inline]
    pub fn device_latency_us(&self) -> u64 {
        self.device_latency_us
    }

    /// A small configuration convenient for unit tests: `M = 256`, `B = 16`.
    pub fn tiny() -> Self {
        Self::new(256, 16).expect("static config is valid")
    }

    /// A medium simulation configuration: `M = 4096`, `B = 64`.
    ///
    /// With these defaults `M/B = 64`, so a single level of merging or
    /// distribution covers a factor-64 size range — small enough that
    /// multi-level behaviour is observable at laptop-scale `N`.
    pub fn medium() -> Self {
        Self::new(4096, 64).expect("static config is valid")
    }

    /// Memory capacity `M` in records.
    #[inline]
    pub fn mem_capacity(&self) -> usize {
        self.mem_capacity
    }

    /// Block size `B` in records.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// `M/B`: the number of blocks that fit in memory.
    #[inline]
    pub fn blocks_in_mem(&self) -> usize {
        self.mem_capacity / self.block_size
    }

    /// Maximum fan-in for multiway merging (and fan-out for distribution):
    /// `max(2, M/B - 2)`, reserving one block for the opposite stream and one
    /// block of slack for bookkeeping.
    #[inline]
    pub fn fan_in(&self) -> usize {
        (self.blocks_in_mem().saturating_sub(2)).max(2)
    }

    /// Number of blocks needed to store `n` one-word records.
    #[inline]
    pub fn blocks_for(&self, n: u64) -> u64 {
        n.div_ceil(self.block_size as u64)
    }

    /// Records of width `words` that fit in one `B`-word block (at least
    /// one: a record wider than a block still moves as one unit under the
    /// indivisibility assumption).
    #[inline]
    pub fn block_records_for_width(&self, words: usize) -> usize {
        (self.block_size / words.max(1)).max(1)
    }

    /// `log_{M/B}(x)`, clamped below at 1 — the paper's `lg_{M/B} x`
    /// convention (`lg_x y = max(1, log_x y)`).
    pub fn lg_mb(&self, x: f64) -> f64 {
        let base = (self.blocks_in_mem() as f64).max(2.0);
        if x <= base {
            1.0
        } else {
            x.ln() / base.ln()
        }
    }

    /// The scanning bound `n/B` in I/Os (as a float, for bound formulas).
    pub fn scan_bound(&self, n: u64) -> f64 {
        n as f64 / self.block_size as f64
    }
}

impl std::fmt::Display for EmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EM(M={}, B={}, M/B={}",
            self.mem_capacity,
            self.block_size,
            self.blocks_in_mem()
        )?;
        if self.workers > 1 {
            write!(f, ", W={}", self.workers)?;
        }
        if self.cache_blocks > 0 {
            write!(f, ", cache={}", self.cache_blocks)?;
        }
        if self.device_latency_us > 0 {
            write!(f, ", lat={}µs", self.device_latency_us)?;
        }
        write!(f, ")")
    }
}

/// Fluent builder for [`EmConfig`]; obtained from [`EmConfig::builder`].
///
/// ```
/// use emcore::EmConfig;
///
/// let cfg = EmConfig::builder()
///     .mem(65536)
///     .block(1024)
///     .workers(4)
///     .cache_blocks(32)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.blocks_in_mem(), 64);
/// assert_eq!(cfg.workers(), 4);
/// assert_eq!(cfg.cache_blocks(), 32);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EmConfigBuilder {
    mem: usize,
    block: usize,
    workers: usize,
    cache_blocks: usize,
    device_latency_us: u64,
}

impl Default for EmConfigBuilder {
    fn default() -> Self {
        Self {
            mem: 4096,
            block: 64,
            workers: 1,
            cache_blocks: 0,
            device_latency_us: 0,
        }
    }
}

impl EmConfigBuilder {
    /// Memory capacity `M` in records (default 4096).
    pub fn mem(mut self, m: usize) -> Self {
        self.mem = m;
        self
    }

    /// Block size `B` in records (default 64).
    pub fn block(mut self, b: usize) -> Self {
        self.block = b;
        self
    }

    /// Worker threads for parallel algorithms (default 1; clamped to ≥ 1 at
    /// build).
    pub fn workers(mut self, w: usize) -> Self {
        self.workers = w;
        self
    }

    /// Buffer-pool block-cache capacity in blocks (default 0 = disabled).
    pub fn cache_blocks(mut self, c: usize) -> Self {
        self.cache_blocks = c;
        self
    }

    /// Simulated device latency per physical disk transfer in microseconds
    /// (default 0 = page-cache speed); see
    /// [`EmConfig::with_device_latency_us`].
    pub fn device_latency_us(mut self, us: u64) -> Self {
        self.device_latency_us = us;
        self
    }

    /// Validate and build the [`EmConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`EmError::Config`] under the same geometry rules as
    /// [`EmConfig::new`].
    pub fn build(self) -> Result<EmConfig> {
        Ok(EmConfig::new(self.mem, self.block)?
            .with_workers(self.workers)
            .with_cache_blocks(self.cache_blocks)
            .with_device_latency_us(self.device_latency_us))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = EmConfig::new(1024, 32).unwrap();
        assert_eq!(c.mem_capacity(), 1024);
        assert_eq!(c.block_size(), 32);
        assert_eq!(c.blocks_in_mem(), 32);
        assert_eq!(c.fan_in(), 30);
    }

    #[test]
    fn rejects_zero_block() {
        assert!(EmConfig::new(16, 0).is_err());
    }

    #[test]
    fn rejects_small_memory() {
        assert!(EmConfig::new(31, 16).is_err());
        assert!(EmConfig::new(32, 16).is_ok());
    }

    #[test]
    fn fan_in_never_below_two() {
        let c = EmConfig::new(32, 16).unwrap();
        assert_eq!(c.fan_in(), 2);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let c = EmConfig::new(64, 16).unwrap();
        assert_eq!(c.blocks_for(0), 0);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(16), 1);
        assert_eq!(c.blocks_for(17), 2);
    }

    #[test]
    fn lg_mb_clamps_at_one() {
        let c = EmConfig::new(1024, 32).unwrap(); // M/B = 32
        assert_eq!(c.lg_mb(2.0), 1.0);
        assert_eq!(c.lg_mb(32.0), 1.0);
        assert!((c.lg_mb(1024.0) - 2.0).abs() < 1e-9);
    }

    /// What `EmConfig::new` should default `workers` to, honouring the
    /// `EM_TEST_WORKERS` CI hook so these tests pass under both suite runs.
    fn env_default_workers() -> usize {
        std::env::var("EM_TEST_WORKERS")
            .ok()
            .and_then(|s| s.parse().ok())
            .filter(|&w: &usize| w >= 1)
            .unwrap_or(1)
    }

    #[test]
    fn display_mentions_parameters() {
        let c = EmConfig::tiny().with_workers(1);
        let s = format!("{c}");
        assert!(s.contains("M=256"));
        assert!(s.contains("B=16"));
        assert!(!s.contains("W="), "workers hidden at default: {s}");
        let p = format!("{}", c.with_workers(4).with_cache_blocks(8));
        assert!(p.contains("W=4") && p.contains("cache=8"), "{p}");
    }

    #[test]
    fn defaults_sequential_uncached() {
        let c = EmConfig::new(1024, 32).unwrap();
        assert_eq!(c.workers(), env_default_workers());
        assert_eq!(c.cache_blocks(), 0);
    }

    #[test]
    fn with_workers_clamps_to_one() {
        let c = EmConfig::tiny().with_workers(0);
        assert_eq!(c.workers(), 1);
    }

    #[test]
    fn builder_round_trips() {
        let c = EmConfig::builder()
            .mem(256)
            .block(16)
            .workers(3)
            .cache_blocks(5)
            .build()
            .unwrap();
        assert_eq!(c.mem_capacity(), 256);
        assert_eq!(c.block_size(), 16);
        assert_eq!(c.workers(), 3);
        assert_eq!(c.cache_blocks(), 5);
        // Geometry validation still applies.
        assert!(EmConfig::builder().mem(8).block(16).build().is_err());
        // Defaults match `medium` (the builder pins workers explicitly, so
        // normalise the env-sensitive default on the `medium` side).
        assert_eq!(
            EmConfig::builder().build().unwrap(),
            EmConfig::medium().with_workers(1)
        );
    }
}
