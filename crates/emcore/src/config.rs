//! External-memory model parameters.
//!
//! The classical I/O model of Aggarwal and Vitter: a machine with an internal
//! memory of `M` items and a disk formatted into blocks of `B` items, with
//! `M >= 2B`. One I/O transfers one block between disk and memory.
//!
//! Throughout this workspace `M` and `B` are expressed in *records* of the
//! file being accessed, see the crate-level documentation for why this is a
//! faithful rendering of the paper's word-based accounting.

use crate::error::{EmError, Result};

/// Parameters of the external-memory model: memory capacity `M` and block
/// size `B`, both counted in records.
///
/// Invariants enforced at construction:
/// * `B >= 1`
/// * `M >= 2 * B` (the model's minimum: at least two blocks fit in memory)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EmConfig {
    mem_capacity: usize,
    block_size: usize,
}

impl EmConfig {
    /// Create a configuration with memory capacity `m` and block size `b`.
    ///
    /// # Errors
    ///
    /// Returns [`EmError::Config`] if `b == 0` or `m < 2 * b`.
    pub fn new(m: usize, b: usize) -> Result<Self> {
        if b == 0 {
            return Err(EmError::config("block size B must be at least 1"));
        }
        if m < 2 * b {
            return Err(EmError::config(format!(
                "memory capacity M={m} must be at least 2B={}",
                2 * b
            )));
        }
        Ok(Self {
            mem_capacity: m,
            block_size: b,
        })
    }

    /// A small configuration convenient for unit tests: `M = 256`, `B = 16`.
    pub fn tiny() -> Self {
        Self::new(256, 16).expect("static config is valid")
    }

    /// A medium simulation configuration: `M = 4096`, `B = 64`.
    ///
    /// With these defaults `M/B = 64`, so a single level of merging or
    /// distribution covers a factor-64 size range — small enough that
    /// multi-level behaviour is observable at laptop-scale `N`.
    pub fn medium() -> Self {
        Self::new(4096, 64).expect("static config is valid")
    }

    /// Memory capacity `M` in records.
    #[inline]
    pub fn mem_capacity(&self) -> usize {
        self.mem_capacity
    }

    /// Block size `B` in records.
    #[inline]
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// `M/B`: the number of blocks that fit in memory.
    #[inline]
    pub fn blocks_in_mem(&self) -> usize {
        self.mem_capacity / self.block_size
    }

    /// Maximum fan-in for multiway merging (and fan-out for distribution):
    /// `max(2, M/B - 2)`, reserving one block for the opposite stream and one
    /// block of slack for bookkeeping.
    #[inline]
    pub fn fan_in(&self) -> usize {
        (self.blocks_in_mem().saturating_sub(2)).max(2)
    }

    /// Number of blocks needed to store `n` one-word records.
    #[inline]
    pub fn blocks_for(&self, n: u64) -> u64 {
        n.div_ceil(self.block_size as u64)
    }

    /// Records of width `words` that fit in one `B`-word block (at least
    /// one: a record wider than a block still moves as one unit under the
    /// indivisibility assumption).
    #[inline]
    pub fn block_records_for_width(&self, words: usize) -> usize {
        (self.block_size / words.max(1)).max(1)
    }

    /// `log_{M/B}(x)`, clamped below at 1 — the paper's `lg_{M/B} x`
    /// convention (`lg_x y = max(1, log_x y)`).
    pub fn lg_mb(&self, x: f64) -> f64 {
        let base = (self.blocks_in_mem() as f64).max(2.0);
        if x <= base {
            1.0
        } else {
            x.ln() / base.ln()
        }
    }

    /// The scanning bound `n/B` in I/Os (as a float, for bound formulas).
    pub fn scan_bound(&self, n: u64) -> f64 {
        n as f64 / self.block_size as f64
    }
}

impl std::fmt::Display for EmConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "EM(M={}, B={}, M/B={})",
            self.mem_capacity,
            self.block_size,
            self.blocks_in_mem()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = EmConfig::new(1024, 32).unwrap();
        assert_eq!(c.mem_capacity(), 1024);
        assert_eq!(c.block_size(), 32);
        assert_eq!(c.blocks_in_mem(), 32);
        assert_eq!(c.fan_in(), 30);
    }

    #[test]
    fn rejects_zero_block() {
        assert!(EmConfig::new(16, 0).is_err());
    }

    #[test]
    fn rejects_small_memory() {
        assert!(EmConfig::new(31, 16).is_err());
        assert!(EmConfig::new(32, 16).is_ok());
    }

    #[test]
    fn fan_in_never_below_two() {
        let c = EmConfig::new(32, 16).unwrap();
        assert_eq!(c.fan_in(), 2);
    }

    #[test]
    fn blocks_for_rounds_up() {
        let c = EmConfig::new(64, 16).unwrap();
        assert_eq!(c.blocks_for(0), 0);
        assert_eq!(c.blocks_for(1), 1);
        assert_eq!(c.blocks_for(16), 1);
        assert_eq!(c.blocks_for(17), 2);
    }

    #[test]
    fn lg_mb_clamps_at_one() {
        let c = EmConfig::new(1024, 32).unwrap(); // M/B = 32
        assert_eq!(c.lg_mb(2.0), 1.0);
        assert_eq!(c.lg_mb(32.0), 1.0);
        assert!((c.lg_mb(1024.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_parameters() {
        let c = EmConfig::tiny();
        let s = format!("{c}");
        assert!(s.contains("M=256"));
        assert!(s.contains("B=16"));
    }
}
