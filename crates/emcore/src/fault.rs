//! Deterministic fault injection at the device layer.
//!
//! A [`FaultPlan`] installed on an [`crate::EmContext`] intercepts every
//! block transfer *beneath* both backings (host-RAM and real files) and
//! injects failures according to a seeded, fully deterministic schedule:
//!
//! * **Transient** read/write errors — the attempt fails, the device is
//!   untouched; a retry succeeds (unless the schedule strikes again).
//! * **Torn writes** — a prefix of the block reaches the device, then the
//!   attempt fails; on the file backend the stored checksum no longer
//!   matches, so a later read of the torn block surfaces
//!   [`crate::EmError::Corrupt`] instead of garbage.
//! * **Silent corruption** — a bit flip on the payload, either in-flight on
//!   a read (detected by the file backend's verify-on-read, and curable by
//!   retrying) or persisted on a write (detected at every subsequent read).
//! * **Fatal** — a simulated crash: the attempt and every subsequent I/O on
//!   the context fail with [`crate::EmError::Crashed`] until
//!   [`FaultPlan::clear_crash`] models a restart.
//!
//! Injection is driven by per-attempt counters, so a schedule replays
//! bit-for-bit: the `i`-th device attempt of a deterministic algorithm is
//! the same operation in every run. Recovery overhead is observable: each
//! failed-then-retried attempt increments [`crate::Counters::retries`], and
//! every checksum miss increments [`crate::Counters::corrupt_reads`], both
//! attributed to the enclosing [`crate::IoStats`] phase.

use std::sync::{Arc, Mutex, MutexGuard};

use crate::rng::SplitMix64;

/// Direction of a device transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A block read.
    Read,
    /// A block write.
    Write,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

impl IoOp {
    /// Stable machine-readable name, used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            IoOp::Read => "read",
            IoOp::Write => "write",
        }
    }

    /// Inverse of [`IoOp::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "read" => Some(IoOp::Read),
            "write" => Some(IoOp::Write),
            _ => None,
        }
    }
}

/// What kind of failure to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Fail a read attempt; the device is untouched.
    TransientRead,
    /// Fail a write attempt; the device is untouched.
    TransientWrite,
    /// Persist only a prefix of the block, then fail the write attempt.
    TornWrite,
    /// Flip one payload bit in-flight on a read. The file backend detects
    /// this via its block checksum ([`crate::EmError::Corrupt`]); the
    /// memory backend has no checksums, so the flip goes through silently.
    CorruptRead,
    /// Flip one payload bit before it is persisted (the write *succeeds*).
    /// The file backend detects the damage on every subsequent read.
    CorruptWrite,
    /// Simulated crash: this attempt and all following I/Os fail with
    /// [`crate::EmError::Crashed`] until [`FaultPlan::clear_crash`].
    Fatal,
}

impl FaultKind {
    /// Stable machine-readable name, used in trace output.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::TransientRead => "transient_read",
            FaultKind::TransientWrite => "transient_write",
            FaultKind::TornWrite => "torn_write",
            FaultKind::CorruptRead => "corrupt_read",
            FaultKind::CorruptWrite => "corrupt_write",
            FaultKind::Fatal => "fatal",
        }
    }

    /// Inverse of [`FaultKind::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "transient_read" => Some(FaultKind::TransientRead),
            "transient_write" => Some(FaultKind::TransientWrite),
            "torn_write" => Some(FaultKind::TornWrite),
            "corrupt_read" => Some(FaultKind::CorruptRead),
            "corrupt_write" => Some(FaultKind::CorruptWrite),
            "fatal" => Some(FaultKind::Fatal),
            _ => None,
        }
    }

    /// Whether this fault can fire on the given operation.
    fn applies_to(self, op: IoOp) -> bool {
        match self {
            FaultKind::TransientRead | FaultKind::CorruptRead => op == IoOp::Read,
            FaultKind::TransientWrite | FaultKind::TornWrite | FaultKind::CorruptWrite => {
                op == IoOp::Write
            }
            FaultKind::Fatal => true,
        }
    }
}

/// When a fault fires. All triggers are evaluated against *device attempt*
/// counters (retries advance them too), so a schedule is deterministic for
/// a deterministic algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Trigger {
    /// The `n`-th device attempt overall (0-based).
    Nth(u64),
    /// The `n`-th attempt of the matching operation (0-based).
    NthOp(u64),
    /// Every `n`-th matching attempt (`n ≥ 1`; fires at n-1, 2n-1, ...).
    EveryNth(u64),
    /// Each matching attempt independently with probability `prob`, drawn
    /// from the plan's seeded RNG.
    Rate(f64),
}

/// One entry of a fault schedule: fire `kind` whenever `trigger` matches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// When to fire.
    pub trigger: Trigger,
    /// What to inject.
    pub kind: FaultKind,
}

/// How many faults of each kind a plan has injected so far.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounts {
    /// Transient read failures injected.
    pub transient_reads: u64,
    /// Transient write failures injected.
    pub transient_writes: u64,
    /// Torn writes injected.
    pub torn_writes: u64,
    /// In-flight read corruptions injected.
    pub corrupt_reads: u64,
    /// Persisted write corruptions injected.
    pub corrupt_writes: u64,
    /// Fatal (crash) faults injected.
    pub fatal: u64,
}

impl FaultCounts {
    /// Faults that fail the attempt and are curable by retrying the same
    /// operation: transients and torn writes. (In-flight read corruption is
    /// also retry-curable but only *detected* on the file backend, so it is
    /// tallied separately.)
    pub fn transient_total(&self) -> u64 {
        self.transient_reads + self.transient_writes + self.torn_writes
    }

    /// All injected faults.
    pub fn total(&self) -> u64 {
        self.transient_total() + self.corrupt_reads + self.corrupt_writes + self.fatal
    }
}

#[derive(Debug)]
struct PlanInner {
    specs: Vec<FaultSpec>,
    rng: SplitMix64,
    attempts: u64,
    attempts_read: u64,
    attempts_write: u64,
    injected: FaultCounts,
    crashed: bool,
    suspended: u32,
}

/// A seeded, deterministic fault schedule shared by all clones (install a
/// clone on the context, keep one to query [`FaultPlan::injected`] or to
/// [`FaultPlan::clear_crash`] after a simulated crash).
///
/// Thread-safe: `decide` serialises behind a mutex, so concurrent workers
/// observe a single global attempt order and the injected-fault counters
/// are race-free. (With more than one thread the *interleaving* of
/// attempts is scheduler-dependent, so positional triggers are only
/// reproducible for single-threaded runs.)
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Mutex<PlanInner>>,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the given RNG seed for
    /// [`Trigger::Rate`] draws.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(PlanInner {
                specs: Vec::new(),
                rng: SplitMix64::new(seed),
                attempts: 0,
                attempts_read: 0,
                attempts_write: 0,
                injected: FaultCounts::default(),
                crashed: false,
                suspended: 0,
            })),
        }
    }

    fn lock(&self) -> MutexGuard<'_, PlanInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Add a schedule entry (builder style).
    pub fn with(self, spec: FaultSpec) -> Self {
        self.lock().specs.push(spec);
        self
    }

    /// Fail the `n`-th device attempt overall with `kind`.
    pub fn fail_nth(self, n: u64, kind: FaultKind) -> Self {
        self.with(FaultSpec {
            trigger: Trigger::Nth(n),
            kind,
        })
    }

    /// Inject transient faults (reads and writes) at `prob` per attempt.
    pub fn transient_rate(self, prob: f64) -> Self {
        self.with(FaultSpec {
            trigger: Trigger::Rate(prob),
            kind: FaultKind::TransientRead,
        })
        .with(FaultSpec {
            trigger: Trigger::Rate(prob),
            kind: FaultKind::TransientWrite,
        })
    }

    /// Crash at the `n`-th device attempt overall.
    pub fn fatal_at(self, n: u64) -> Self {
        self.fail_nth(n, FaultKind::Fatal)
    }

    /// Faults injected so far.
    pub fn injected(&self) -> FaultCounts {
        self.lock().injected
    }

    /// Device attempts observed so far (successful or not, reads + writes).
    pub fn attempts(&self) -> u64 {
        self.lock().attempts
    }

    /// Whether a [`FaultKind::Fatal`] fault has fired and not been cleared.
    pub fn is_crashed(&self) -> bool {
        self.lock().crashed
    }

    /// Model a restart after a crash: subsequent I/O proceeds normally
    /// (the schedule keeps advancing from where it was).
    pub fn clear_crash(&self) {
        self.lock().crashed = false;
    }

    /// Drop every schedule entry, ending the fault phase: no further
    /// faults are injected, but attempt counters and injected-fault
    /// totals are preserved. Chaos harnesses use this to let a service
    /// heal (breaker probes succeed, quarantined datasets recover)
    /// after a deterministic storm, without swapping the installed plan.
    pub fn clear_specs(&self) {
        self.lock().specs.clear();
    }

    /// Run `f` with injection suspended (attempt counters do not advance).
    /// Verification oracles use this so checking an output is not itself
    /// subject to the fault schedule. Suspensions nest. A pending crash
    /// still blocks I/O — a crashed machine cannot run oracles either.
    pub fn suspended<R>(&self, f: impl FnOnce() -> R) -> R {
        self.lock().suspended += 1;
        let _guard = SuspendGuard { plan: self };
        f()
    }

    /// Decide the fate of the next device attempt of `op`. Returns the
    /// fault to inject, if any; `None` means the attempt proceeds normally.
    /// A pending crash reports as `Fatal` without advancing the schedule.
    pub(crate) fn decide(&self, op: IoOp) -> Option<FaultKind> {
        let mut g = self.lock();
        if g.suspended > 0 && !g.crashed {
            return None;
        }
        if g.crashed {
            return Some(FaultKind::Fatal);
        }
        let (nth, nth_op) = match op {
            IoOp::Read => (g.attempts, g.attempts_read),
            IoOp::Write => (g.attempts, g.attempts_write),
        };
        g.attempts += 1;
        match op {
            IoOp::Read => g.attempts_read += 1,
            IoOp::Write => g.attempts_write += 1,
        }
        let mut fired: Option<FaultKind> = None;
        for i in 0..g.specs.len() {
            let spec = g.specs[i];
            if !spec.kind.applies_to(op) {
                continue;
            }
            let hit = match spec.trigger {
                Trigger::Nth(n) => nth == n,
                Trigger::NthOp(n) => nth_op == n,
                Trigger::EveryNth(n) => n >= 1 && (nth_op + 1) % n == 0,
                // Every Rate spec draws on every matching attempt, fired or
                // not, so the schedule is independent of other entries.
                Trigger::Rate(p) => g.rng.unit() < p,
            };
            if hit && fired.is_none() {
                fired = Some(spec.kind);
            }
        }
        if let Some(kind) = fired {
            match kind {
                FaultKind::TransientRead => g.injected.transient_reads += 1,
                FaultKind::TransientWrite => g.injected.transient_writes += 1,
                FaultKind::TornWrite => g.injected.torn_writes += 1,
                FaultKind::CorruptRead => g.injected.corrupt_reads += 1,
                FaultKind::CorruptWrite => g.injected.corrupt_writes += 1,
                FaultKind::Fatal => {
                    g.injected.fatal += 1;
                    g.crashed = true;
                }
            }
        }
        fired
    }

    /// The global attempt index of the *next* device attempt (for error
    /// reporting: the index at which a fault fired).
    pub(crate) fn last_attempt_index(&self) -> u64 {
        self.lock().attempts.saturating_sub(1)
    }
}

struct SuspendGuard<'a> {
    plan: &'a FaultPlan,
}

impl Drop for SuspendGuard<'_> {
    fn drop(&mut self) {
        self.plan.lock().suspended -= 1;
    }
}

/// Bounded-retry policy with a deterministic exponential backoff schedule.
///
/// The EM model has no wall clock, so backoff is accounted in *virtual
/// ticks* (`backoff_base << (attempt-1)` before the `attempt`-th retry),
/// accumulated on the context ([`crate::EmContext::backoff_ticks`]) — the
/// schedule is observable and reproducible without real sleeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts per block transfer (1 = no retries).
    pub max_attempts: u32,
    /// Base of the exponential backoff schedule, in virtual ticks.
    pub backoff_base: u64,
}

impl RetryPolicy {
    /// No retries: the first failure surfaces to the caller.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        backoff_base: 0,
    };

    /// Up to `retries` retries (so `retries + 1` attempts), unit backoff.
    pub fn retries(retries: u32) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff_base: 1,
        }
    }

    /// Virtual ticks to back off before retry number `attempt` (1-based
    /// count of *failed* attempts so far): `base · 2^(attempt−1)`, capped.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        self.backoff_base
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(32))
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let p = FaultPlan::new(1);
        for _ in 0..100 {
            assert_eq!(p.decide(IoOp::Read), None);
            assert_eq!(p.decide(IoOp::Write), None);
        }
        assert_eq!(p.injected().total(), 0);
        assert_eq!(p.attempts(), 200);
    }

    #[test]
    fn nth_fires_once_at_exact_attempt() {
        let p = FaultPlan::new(0).fail_nth(2, FaultKind::TransientRead);
        assert_eq!(p.decide(IoOp::Read), None); // attempt 0
        assert_eq!(p.decide(IoOp::Read), None); // attempt 1
        assert_eq!(p.decide(IoOp::Read), Some(FaultKind::TransientRead)); // 2
        assert_eq!(p.decide(IoOp::Read), None);
        assert_eq!(p.injected().transient_reads, 1);
    }

    #[test]
    fn op_mismatch_does_not_fire() {
        let p = FaultPlan::new(0).fail_nth(0, FaultKind::TransientWrite);
        // Attempt 0 is a read; the write fault does not apply.
        assert_eq!(p.decide(IoOp::Read), None);
        assert_eq!(p.decide(IoOp::Write), None); // overall attempt 1 ≠ 0
        assert_eq!(p.injected().total(), 0);
    }

    #[test]
    fn every_nth_periodic() {
        let p = FaultPlan::new(0).with(FaultSpec {
            trigger: Trigger::EveryNth(3),
            kind: FaultKind::TransientWrite,
        });
        let mut fired = 0;
        for _ in 0..9 {
            if p.decide(IoOp::Write).is_some() {
                fired += 1;
            }
        }
        assert_eq!(fired, 3);
    }

    #[test]
    fn rate_deterministic_per_seed() {
        let run = |seed| {
            let p = FaultPlan::new(seed).transient_rate(0.3);
            (0..200)
                .map(|i| {
                    p.decide(if i % 2 == 0 { IoOp::Read } else { IoOp::Write })
                        .is_some()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        assert!(run(7).iter().filter(|&&b| b).count() > 10);
    }

    #[test]
    fn fatal_sticks_until_cleared() {
        let p = FaultPlan::new(0).fatal_at(1);
        assert_eq!(p.decide(IoOp::Read), None);
        assert_eq!(p.decide(IoOp::Write), Some(FaultKind::Fatal));
        assert!(p.is_crashed());
        // Everything fails now, without advancing the schedule.
        let attempts = p.attempts();
        assert_eq!(p.decide(IoOp::Read), Some(FaultKind::Fatal));
        assert_eq!(p.attempts(), attempts);
        p.clear_crash();
        assert_eq!(p.decide(IoOp::Read), None);
    }

    #[test]
    fn suspension_freezes_schedule() {
        let p = FaultPlan::new(0).fail_nth(1, FaultKind::TransientRead);
        assert_eq!(p.decide(IoOp::Read), None); // attempt 0
        p.suspended(|| {
            for _ in 0..50 {
                assert_eq!(p.decide(IoOp::Read), None);
            }
        });
        // Next unsuspended attempt is still index 1.
        assert_eq!(p.decide(IoOp::Read), Some(FaultKind::TransientRead));
    }

    #[test]
    fn crash_blocks_even_suspended() {
        let p = FaultPlan::new(0).fatal_at(0);
        assert_eq!(p.decide(IoOp::Read), Some(FaultKind::Fatal));
        p.suspended(|| {
            assert_eq!(p.decide(IoOp::Read), Some(FaultKind::Fatal));
        });
    }

    #[test]
    fn retry_policy_backoff_schedule() {
        let r = RetryPolicy {
            max_attempts: 5,
            backoff_base: 2,
        };
        assert_eq!(r.backoff_ticks(1), 2);
        assert_eq!(r.backoff_ticks(2), 4);
        assert_eq!(r.backoff_ticks(3), 8);
        assert_eq!(RetryPolicy::NONE.backoff_ticks(1), 0);
        assert_eq!(RetryPolicy::retries(3).max_attempts, 4);
    }

    #[test]
    fn clear_specs_ends_the_storm_but_keeps_totals() {
        let p = FaultPlan::new(0).with(FaultSpec {
            trigger: Trigger::EveryNth(1),
            kind: FaultKind::TransientRead,
        });
        assert!(p.decide(IoOp::Read).is_some());
        assert!(p.decide(IoOp::Read).is_some());
        p.clear_specs();
        for _ in 0..20 {
            assert_eq!(p.decide(IoOp::Read), None);
        }
        assert_eq!(p.injected().transient_reads, 2);
        assert_eq!(p.attempts(), 22);
    }

    #[test]
    fn clones_share_state() {
        let p = FaultPlan::new(0).fail_nth(0, FaultKind::TransientRead);
        let q = p.clone();
        assert_eq!(q.decide(IoOp::Read), Some(FaultKind::TransientRead));
        assert_eq!(p.injected().transient_reads, 1);
    }
}
