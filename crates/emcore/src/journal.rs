//! Durable checkpoint journals.
//!
//! A [`Journal`] is a small named metadata document attached to an
//! [`EmContext`], used by recoverable algorithms to persist their manifest
//! state between work units so a crashed run can resume — within the same
//! process or, on the directory backend, from a *different* process that
//! reopens the backing directory.
//!
//! ## Durability contract
//!
//! * **Atomic commit** — on the directory backend a commit writes the whole
//!   document to `<name>.journal.tmp`, fsyncs it, then renames it over
//!   `<name>.journal`. A crash at any point leaves either the previous
//!   committed document or the new one, never a mixture; a stale `.tmp` is
//!   harmless and swept by [`EmContext::gc_orphans`].
//! * **Torn-write safe** — the header carries the body's length and a
//!   checksum ([`crate::block_checksum`]); a truncated or bit-flipped
//!   journal fails verification on load instead of decoding to wrong state.
//! * **Versioned** — the header records the state's `KIND` and `VERSION`;
//!   loading a journal written by a different kind or an incompatible
//!   version is rejected rather than misparsed.
//!
//! On the memory backend, committed documents live in the context itself
//! (there is no directory to survive a real process exit); in-process
//! crash/resume works identically on both backends.
//!
//! Journal commits are host-side metadata writes, deliberately outside the
//! block-I/O model: they charge [`crate::Counters::journal_writes`], not
//! `reads`/`writes`. They are also not subject to the fault plan — the
//! commit protocol itself is the defence (rename atomicity + checksum),
//! and the fault layer models the *data* device, not the metadata store.
//!
//! ## Document format
//!
//! ```text
//! emjournal v1 <kind> <state-version> <body-bytes> <checksum-hex>\n
//! <body…>
//! ```
//!
//! The body encoding belongs to the [`JournalState`] implementor; the
//! convention in this workspace is line-oriented `key value…` text.

use std::path::PathBuf;

use crate::checksum::block_checksum;
use crate::ctx::EmContext;
use crate::error::{EmError, Result};

/// Magic + format version of the journal envelope (the *state* carries its
/// own version on top of this).
const MAGIC: &str = "emjournal v1";

/// State that can be persisted in a [`Journal`].
///
/// `encode`/`decode` must round-trip: `decode(encode(s)) == s` up to
/// resources that need a context to reattach (file handles are encoded as
/// `(id, len)` pairs and reopened by the owning manifest's load path).
pub trait JournalState: Sized {
    /// Identifies the manifest type (e.g. `"sort-manifest"`). Loading a
    /// journal whose kind differs is an error.
    const KIND: &'static str;
    /// State-encoding version; bump on incompatible layout changes.
    const VERSION: u32;
    /// Append the state's body to `out`.
    fn encode(&self, out: &mut String);
    /// Parse a body produced by [`JournalState::encode`].
    fn decode(body: &str) -> Result<Self>;
}

/// A named, durable, atomically-committed checkpoint document.
#[derive(Debug, Clone)]
pub struct Journal {
    ctx: EmContext,
    name: String,
}

impl Journal {
    /// A journal named `name` on `ctx`'s backing store. Names are restricted
    /// to `[a-z0-9-]` so they map directly to file names.
    pub fn new(ctx: &EmContext, name: impl Into<String>) -> Result<Self> {
        let name = name.into();
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-')
        {
            return Err(EmError::config(format!(
                "journal name {name:?} must be non-empty [a-z0-9-]"
            )));
        }
        Ok(Self {
            ctx: ctx.clone(),
            name,
        })
    }

    /// The journal's name.
    #[inline]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The owning context.
    #[inline]
    pub fn ctx(&self) -> &EmContext {
        &self.ctx
    }

    /// Path of the committed document on the directory backend (`None` in
    /// memory).
    pub fn path(&self) -> Option<PathBuf> {
        self.ctx
            .backing_dir()
            .map(|d| d.join(format!("{}.journal", self.name)))
    }

    fn tmp_path(&self) -> Option<PathBuf> {
        self.ctx
            .backing_dir()
            .map(|d| d.join(format!("{}.journal.tmp", self.name)))
    }

    /// Whether a committed document exists.
    pub fn exists(&self) -> bool {
        match self.path() {
            Some(p) => p.exists(),
            None => self.ctx.journal_get(&self.name).is_some(),
        }
    }

    /// Atomically commit `state`, replacing any previous document. Charges
    /// one [`crate::Counters::journal_writes`].
    pub fn commit<S: JournalState>(&self, state: &S) -> Result<()> {
        let mut body = String::new();
        state.encode(&mut body);
        let doc = format!(
            "{MAGIC} {} {} {} {:016x}\n{body}",
            S::KIND,
            S::VERSION,
            body.len(),
            block_checksum(body.as_bytes()),
        );
        match (self.path(), self.tmp_path()) {
            (Some(path), Some(tmp)) => {
                {
                    let mut f = std::fs::File::create(&tmp)?;
                    use std::io::Write;
                    f.write_all(doc.as_bytes())?;
                    f.sync_all()?;
                }
                std::fs::rename(&tmp, &path)?;
                // Best-effort directory fsync so the rename itself is
                // durable; simulation correctness does not depend on it.
                if let Some(dir) = self.ctx.backing_dir() {
                    if let Ok(d) = std::fs::File::open(dir) {
                        let _ = d.sync_all();
                    }
                }
            }
            _ => self.ctx.journal_put(&self.name, doc),
        }
        self.ctx.stats().record_journal_write();
        let tracer = self.ctx.tracer();
        if tracer.is_enabled() {
            tracer.point(crate::trace::PointKind::JournalCommit {
                name: self.name.clone(),
            });
        }
        Ok(())
    }

    /// Load and verify the committed document. `Ok(None)` when no document
    /// exists; an error when one exists but fails verification (wrong kind,
    /// incompatible version, torn or corrupt body).
    pub fn load<S: JournalState>(&self) -> Result<Option<S>> {
        let doc = match self.path() {
            Some(p) => match std::fs::read_to_string(&p) {
                Ok(s) => s,
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
                Err(e) => return Err(e.into()),
            },
            None => match self.ctx.journal_get(&self.name) {
                Some(s) => s,
                None => return Ok(None),
            },
        };
        let (header, body) = doc.split_once('\n').ok_or_else(|| {
            EmError::config(format!("journal {}: missing header line", self.name))
        })?;
        let fields: Vec<&str> = header.split(' ').collect();
        if fields.len() != 6 || fields[0] != "emjournal" || fields[1] != "v1" {
            return Err(EmError::config(format!(
                "journal {}: bad header {header:?}",
                self.name
            )));
        }
        if fields[2] != S::KIND {
            return Err(EmError::config(format!(
                "journal {}: kind {} where {} was expected",
                self.name,
                fields[2],
                S::KIND
            )));
        }
        let version: u32 = fields[3]
            .parse()
            .map_err(|_| EmError::config(format!("journal {}: bad version", self.name)))?;
        if version != S::VERSION {
            return Err(EmError::config(format!(
                "journal {}: version {version} where {} was expected",
                self.name,
                S::VERSION
            )));
        }
        let len: usize = fields[4]
            .parse()
            .map_err(|_| EmError::config(format!("journal {}: bad body length", self.name)))?;
        let sum = u64::from_str_radix(fields[5], 16)
            .map_err(|_| EmError::config(format!("journal {}: bad checksum", self.name)))?;
        if body.len() != len || block_checksum(body.as_bytes()) != sum {
            return Err(EmError::config(format!(
                "journal {}: body fails verification (torn or corrupt)",
                self.name
            )));
        }
        S::decode(body).map(Some)
    }

    /// Remove the committed document (idempotent).
    pub fn remove(&self) -> Result<()> {
        match self.path() {
            Some(p) => {
                match std::fs::remove_file(&p) {
                    Ok(()) => {}
                    Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e.into()),
                }
                if let Some(tmp) = self.tmp_path() {
                    let _ = std::fs::remove_file(tmp);
                }
            }
            None => self.ctx.journal_remove(&self.name),
        }
        Ok(())
    }
}

/// Hex-encode bytes (journal bodies are text; record payloads embed as hex).
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decode a [`to_hex`] string.
pub fn from_hex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(EmError::config("hex payload has odd length"));
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for i in (0..s.len()).step_by(2) {
        let byte = u8::from_str_radix(&s[i..i + 2], 16)
            .map_err(|_| EmError::config("hex payload has non-hex digits"))?;
        out.push(byte);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmConfig;

    #[derive(Debug, PartialEq, Eq)]
    struct Demo {
        phase: u64,
        items: Vec<u64>,
    }

    impl JournalState for Demo {
        const KIND: &'static str = "demo";
        const VERSION: u32 = 1;

        fn encode(&self, out: &mut String) {
            out.push_str(&format!("phase {}\n", self.phase));
            for x in &self.items {
                out.push_str(&format!("item {x}\n"));
            }
        }

        fn decode(body: &str) -> Result<Self> {
            let mut phase = 0;
            let mut items = Vec::new();
            for line in body.lines() {
                match line.split_once(' ') {
                    Some(("phase", v)) => phase = v.parse().map_err(|_| EmError::config("p"))?,
                    Some(("item", v)) => items.push(v.parse().map_err(|_| EmError::config("i"))?),
                    _ => return Err(EmError::config(format!("demo: bad line {line:?}"))),
                }
            }
            Ok(Self { phase, items })
        }
    }

    #[test]
    fn roundtrip_memory() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let j = Journal::new(&ctx, "demo-state").unwrap();
        assert!(!j.exists());
        assert!(j.load::<Demo>().unwrap().is_none());
        let s = Demo {
            phase: 3,
            items: vec![10, 20, 30],
        };
        j.commit(&s).unwrap();
        assert!(j.exists());
        assert_eq!(j.load::<Demo>().unwrap().unwrap(), s);
        assert_eq!(ctx.stats().snapshot().journal_writes, 1);
        assert_eq!(ctx.stats().snapshot().total_ios(), 0);
        j.remove().unwrap();
        assert!(!j.exists());
    }

    #[test]
    fn roundtrip_disk_and_atomic_replace() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let j = Journal::new(&ctx, "demo-state").unwrap();
        j.commit(&Demo {
            phase: 1,
            items: vec![],
        })
        .unwrap();
        j.commit(&Demo {
            phase: 2,
            items: vec![5],
        })
        .unwrap();
        let got = j.load::<Demo>().unwrap().unwrap();
        assert_eq!(got.phase, 2);
        assert_eq!(got.items, vec![5]);
        // No stale tmp file survives a successful commit.
        assert!(!j.path().unwrap().with_extension("journal.tmp").exists());
        assert_eq!(ctx.stats().snapshot().journal_writes, 2);
    }

    #[test]
    fn torn_document_is_rejected_not_misparsed() {
        let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let j = Journal::new(&ctx, "demo-state").unwrap();
        j.commit(&Demo {
            phase: 9,
            items: vec![1, 2, 3],
        })
        .unwrap();
        let path = j.path().unwrap();
        let doc = std::fs::read_to_string(&path).unwrap();
        // Simulate a torn write: drop the tail of the body.
        std::fs::write(&path, &doc[..doc.len() - 4]).unwrap();
        assert!(j.load::<Demo>().is_err());
        // And a flipped byte in the body.
        let mut bytes = doc.into_bytes();
        let last = bytes.len() - 2;
        bytes[last] ^= 0x20;
        std::fs::write(&path, bytes).unwrap();
        assert!(j.load::<Demo>().is_err());
    }

    #[test]
    fn wrong_kind_and_version_rejected() {
        #[derive(Debug)]
        struct Other;
        impl JournalState for Other {
            const KIND: &'static str = "other";
            const VERSION: u32 = 1;
            fn encode(&self, _out: &mut String) {}
            fn decode(_body: &str) -> Result<Self> {
                Ok(Self)
            }
        }
        #[derive(Debug)]
        struct DemoV2;
        impl JournalState for DemoV2 {
            const KIND: &'static str = "demo";
            const VERSION: u32 = 2;
            fn encode(&self, _out: &mut String) {}
            fn decode(_body: &str) -> Result<Self> {
                Ok(Self)
            }
        }
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let j = Journal::new(&ctx, "demo-state").unwrap();
        j.commit(&Demo {
            phase: 0,
            items: vec![],
        })
        .unwrap();
        assert!(j.load::<Other>().is_err());
        assert!(j.load::<DemoV2>().is_err());
    }

    #[test]
    fn bad_names_rejected() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        assert!(Journal::new(&ctx, "").is_err());
        assert!(Journal::new(&ctx, "Has/Slash").is_err());
        assert!(Journal::new(&ctx, "sort-manifest").is_ok());
    }

    #[test]
    fn hex_roundtrip() {
        let bytes = [0u8, 1, 0xab, 0xff, 42];
        let h = to_hex(&bytes);
        assert_eq!(from_hex(&h).unwrap(), bytes);
        assert!(from_hex("abc").is_err());
        assert!(from_hex("zz").is_err());
    }
}
