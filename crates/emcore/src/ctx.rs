//! The execution context: model parameters + shared accounting + backing
//! store for block files.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::clock::{Clock, WallClock};
use crate::config::EmConfig;
use crate::error::Result;
use crate::fault::{FaultPlan, RetryPolicy};
use crate::file::{EmFile, Writer};
use crate::governor::MemoryGovernor;
use crate::memory::{MemCharge, MemoryTracker, TrackedVec};
use crate::metrics::{Histogram, MetricsRegistry};
use crate::pool::BlockCache;
use crate::record::Record;
use crate::stats::IoStats;
use crate::trace::{JsonlSink, TraceSink, Tracer};

#[derive(Debug)]
pub(crate) enum Backing {
    Memory,
    Directory { dir: PathBuf, cleanup: bool },
}

#[derive(Debug)]
pub(crate) struct CtxInner {
    pub(crate) config: EmConfig,
    pub(crate) stats: IoStats,
    /// The trace channel shared with `stats` (spans are phases).
    pub(crate) tracer: Tracer,
    pub(crate) mem: MemoryTracker,
    /// Policy layer over the dynamic budget: admission-controlled leases
    /// with weighted fair shares (see [`crate::governor`]).
    pub(crate) governor: MemoryGovernor,
    pub(crate) backing: Backing,
    /// The shared buffer-pool block cache (disabled when
    /// [`EmConfig::cache_blocks`] is 0).
    pub(crate) cache: BlockCache,
    next_file_id: AtomicU64,
    /// Fast-path mirror of `fault_plan.is_some()`: the device layer checks
    /// this relaxed flag on every transfer and skips the plan mutex
    /// entirely when no faults are armed.
    pub(crate) fault_armed: std::sync::atomic::AtomicBool,
    pub(crate) fault_plan: Mutex<Option<FaultPlan>>,
    pub(crate) retry_policy: Mutex<RetryPolicy>,
    pub(crate) backoff_ticks: AtomicU64,
    /// Committed journal documents on the memory backend (the directory
    /// backend stores them as `<name>.journal` files instead).
    journals: Mutex<HashMap<String, String>>,
    /// Live metrics. Disabled by default — mirroring the tracer, a
    /// disabled registry costs one branch per record site and a run is
    /// bit-identical to one without metrics at all.
    pub(crate) metrics: MetricsRegistry,
    /// Physical-transfer latency fed by the device layer (µs per
    /// [`crate::file`] `device_read`).
    pub(crate) device_read_us: Histogram,
    /// Physical-transfer latency per `device_write`.
    pub(crate) device_write_us: Histogram,
    /// The time source consumers (serve scheduler, samplers) should read.
    /// Swappable so tests install a [`crate::clock::ManualClock`].
    clock: Mutex<Arc<dyn Clock>>,
}

impl Drop for CtxInner {
    fn drop(&mut self) {
        if let Backing::Directory { dir, cleanup: true } = &self.backing {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
}

/// A handle to an external-memory "machine": the `(M, B)` configuration, the
/// I/O counters, the memory meter, and the backing store where block files
/// live. Clones share all state.
///
/// The handle is `Send + Sync`: clones can be moved to worker threads and
/// used concurrently. Counters are atomics or mutex-protected, so the
/// single-threaded fast path pays only uncontended-lock cost.
///
/// ```
/// use emcore::{EmConfig, EmContext};
///
/// let ctx = EmContext::new_in_memory(EmConfig::tiny());
/// let mut w = ctx.writer::<u64>().unwrap();
/// for x in 0..100u64 {
///     w.push(x).unwrap();
/// }
/// let f = w.finish().unwrap();
/// assert_eq!(f.len(), 100);
/// assert!(ctx.stats().snapshot().writes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct EmContext {
    pub(crate) inner: Arc<CtxInner>,
}

impl EmContext {
    /// A context whose files live in host RAM (fast simulation). The memory
    /// meter records peaks but does not panic.
    pub fn new_in_memory(config: EmConfig) -> Self {
        Self::build(config, Backing::Memory, false, MetricsRegistry::new())
    }

    /// Like [`EmContext::new_in_memory`], but the context records into the
    /// caller-supplied `metrics` registry instead of a private one. A fleet
    /// of contexts (one per shard) built over the same registry shares
    /// every metric cell — `(name, labels)` dedup in
    /// [`MetricsRegistry::child`] makes the aggregation exact — so a single
    /// scrape tells the whole fleet's story.
    pub fn new_in_memory_with_metrics(config: EmConfig, metrics: MetricsRegistry) -> Self {
        Self::build(config, Backing::Memory, false, metrics)
    }

    /// Like [`EmContext::new_in_memory`], but the memory meter *panics* when
    /// live tracked memory exceeds `M` words. Unit tests of EM algorithms run
    /// in this mode to prove they stay within the model.
    pub fn new_in_memory_strict(config: EmConfig) -> Self {
        Self::build(config, Backing::Memory, true, MetricsRegistry::new())
    }

    /// A context whose files are real files inside `dir` (created if
    /// missing). The directory is left in place on drop; individual files
    /// are deleted as their handles drop.
    pub fn new_on_disk(config: EmConfig, dir: impl Into<PathBuf>) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self::build(
            config,
            Backing::Directory {
                dir,
                cleanup: false,
            },
            false,
            MetricsRegistry::new(),
        ))
    }

    /// Like [`EmContext::new_on_disk`], but recording into the
    /// caller-supplied `metrics` registry (see
    /// [`EmContext::new_in_memory_with_metrics`]).
    pub fn new_on_disk_with_metrics(
        config: EmConfig,
        dir: impl Into<PathBuf>,
        metrics: MetricsRegistry,
    ) -> Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(Self::build(
            config,
            Backing::Directory {
                dir,
                cleanup: false,
            },
            false,
            metrics,
        ))
    }

    /// A context backed by a fresh unique temporary directory, removed when
    /// the last handle drops.
    pub fn new_on_disk_temp(config: EmConfig) -> Result<Self> {
        let mut dir = std::env::temp_dir();
        let unique = format!(
            "em-splitters-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        );
        dir.push(unique);
        std::fs::create_dir_all(&dir)?;
        Ok(Self::build(
            config,
            Backing::Directory { dir, cleanup: true },
            false,
            MetricsRegistry::new(),
        ))
    }

    fn build(config: EmConfig, backing: Backing, strict: bool, metrics: MetricsRegistry) -> Self {
        let stats = IoStats::new();
        let tracer = stats.tracer();
        let device_read_us = metrics.histogram(
            "em_device_read_us",
            "physical block-read latency in microseconds",
        );
        let device_write_us = metrics.histogram(
            "em_device_write_us",
            "physical block-write latency in microseconds",
        );
        Self {
            inner: Arc::new(CtxInner {
                config,
                stats,
                tracer,
                mem: MemoryTracker::new(config.mem_capacity(), strict),
                governor: MemoryGovernor::new(config.mem_capacity()),
                backing,
                cache: BlockCache::new(config.cache_blocks()),
                next_file_id: AtomicU64::new(0),
                fault_armed: std::sync::atomic::AtomicBool::new(false),
                fault_plan: Mutex::new(None),
                retry_policy: Mutex::new(RetryPolicy::NONE),
                backoff_ticks: AtomicU64::new(0),
                journals: Mutex::new(HashMap::new()),
                metrics,
                device_read_us,
                device_write_us,
                clock: Mutex::new(Arc::new(WallClock::new())),
            }),
        }
    }

    /// The model parameters.
    #[inline]
    pub fn config(&self) -> EmConfig {
        self.inner.config
    }

    /// The shared I/O counters.
    #[inline]
    pub fn stats(&self) -> &IoStats {
        &self.inner.stats
    }

    /// The shared memory meter.
    #[inline]
    pub fn mem(&self) -> &MemoryTracker {
        &self.inner.mem
    }

    /// The trace channel. Disabled (near-zero overhead) until a sink is
    /// installed via [`EmContext::set_trace_sink`] or
    /// [`EmContext::trace_to_file`].
    #[inline]
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    /// Install a trace sink and start a trace. The opening
    /// [`crate::TraceEvent::Begin`] records this machine's `(M, B)`.
    pub fn set_trace_sink(&self, sink: Box<dyn TraceSink>) {
        self.inner.tracer.install(
            sink,
            self.inner.config.mem_capacity() as u64,
            self.inner.config.block_size() as u64,
        );
    }

    /// Start streaming trace events to a JSONL file at `path` (one
    /// [`crate::TraceEvent`] per line). Trace writes are host-side
    /// observability output: they charge no I/O and consult no fault plan.
    pub fn trace_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<()> {
        let sink = JsonlSink::create(path)?;
        self.set_trace_sink(Box::new(sink));
        Ok(())
    }

    /// End the current trace, if any: emit per-file access summaries and
    /// the end event, flush and drop the sink, disable tracing.
    pub fn finish_trace(&self) {
        self.inner.tracer.finish();
    }

    /// The live metrics registry shared by every layer running on this
    /// context. Disabled until [`crate::metrics::MetricsRegistry::set_enabled`];
    /// while disabled every record site is a single branch and the run is
    /// bit-identical to an uninstrumented one.
    #[inline]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The time source consumers of this context should read (serve
    /// scheduler deadlines, metric sample timestamps). [`WallClock`] by
    /// default.
    pub fn clock(&self) -> Arc<dyn Clock> {
        lock_ok(&self.inner.clock).clone()
    }

    /// Swap the time source — tests install a
    /// [`crate::clock::ManualClock`] to drive deadline and cooldown logic
    /// deterministically. Consumers that cached the previous clock keep
    /// it; install before starting servers or samplers.
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *lock_ok(&self.inner.clock) = clock;
    }

    /// How many records of type `T` fit in memory: `M / T::WORDS`, where
    /// `M` is the **dynamic** budget (equal to
    /// [`EmConfig::mem_capacity`] until a governor squeeze re-points it via
    /// [`EmContext::set_mem_budget`]). Algorithms re-read this at phase
    /// boundaries, which is how they honor reclaim requests.
    #[inline]
    pub fn mem_records<T: Record>(&self) -> usize {
        self.inner.mem.capacity() / T::WORDS
    }

    /// The memory governor: admission-controlled leases over the dynamic
    /// budget with weighted fair shares.
    #[inline]
    pub fn governor(&self) -> &MemoryGovernor {
        &self.inner.governor
    }

    /// The current dynamic memory budget in words (starts at
    /// [`EmConfig::mem_capacity`]).
    #[inline]
    pub fn mem_budget(&self) -> usize {
        self.inner.mem.capacity()
    }

    /// Re-point the workspace memory budget mid-run — the governor's
    /// squeeze (shrink) / restore (grow) entry point.
    ///
    /// The request is clamped to the model floor `2B` words (the minimum
    /// [`EmConfig`] itself admits) and delivered to every layer at once:
    /// the strict tracker re-points its capacity (new charges above the
    /// budget fail typed, existing charges stay valid), the governor
    /// recomputes lease fair shares, and the block cache is shrunk or
    /// regrown in proportion — shedding clean frames first and flushing any
    /// dirty write-back frames through the supplied hook before they are
    /// released. Running jobs observe the new budget at their next phase
    /// boundary. Returns the clamped budget that took effect.
    pub fn set_mem_budget(&self, words: usize) -> Result<usize> {
        let floor = self.inner.config.block_size() * 2;
        let words = words.max(floor);
        let prev = self.inner.mem.capacity();
        self.inner.mem.set_capacity(words);
        self.inner.governor.set_total(words);
        // Scale the frame budget with M so the layer beneath the model
        // participates in the squeeze too.
        let cache_full = self.inner.config.cache_blocks();
        if cache_full > 0 {
            let scaled = ((cache_full as u128 * words as u128)
                / self.inner.config.mem_capacity().max(1) as u128)
                as usize;
            // The context's own device path is write-through, so its cache
            // never holds dirty frames and this hook is unreachable; if an
            // embedder ever parks write-back frames here, failing the
            // shrink is the correct never-drop response.
            self.inner
                .cache
                .set_capacity(scaled.clamp(1, cache_full), &mut |_, _, _| {
                    Err(crate::error::EmError::config(
                        "cache squeeze found a dirty frame on a write-through context",
                    ))
                })?;
        }
        if words < prev {
            self.inner.stats.record_mem_reclaim();
            self.inner.tracer.point(crate::trace::PointKind::Governor {
                event: "squeeze".into(),
                words: words as u64,
            });
        } else if words > prev {
            self.inner.tracer.point(crate::trace::PointKind::Governor {
                event: "restore".into(),
                words: words as u64,
            });
        }
        Ok(words)
    }

    /// The shared buffer-pool block cache (inert unless the context was
    /// built with [`EmConfig::cache_blocks`] > 0).
    #[inline]
    pub fn cache(&self) -> &BlockCache {
        &self.inner.cache
    }

    /// Create an empty block file.
    pub fn create_file<T: Record>(&self) -> Result<EmFile<T>> {
        let id = self.inner.next_file_id.fetch_add(1, Ordering::Relaxed);
        EmFile::create(self.clone(), id)
    }

    /// Create a buffered writer building a fresh file. Fails if the backing
    /// store cannot create the file (or the device layer injects a fault).
    pub fn writer<T: Record>(&self) -> Result<Writer<T>> {
        Writer::new(self.clone())
    }

    /// Reopen an existing block file by id on the **directory backend** —
    /// the cross-process resume path. The file must hold `len` records of
    /// `T` (written by a previous context over the same directory); its
    /// size is validated against the block layout. The returned handle is
    /// [`EmFile::persistent`], so dropping it does not delete the data, and
    /// `next_file_id` is bumped past `id` so fresh files cannot collide.
    pub fn open_file<T: Record>(&self, id: u64, len: u64) -> Result<EmFile<T>> {
        if matches!(self.inner.backing, Backing::Memory) {
            return Err(crate::error::EmError::config(
                "open_file: cross-process reopen requires a directory-backed context",
            ));
        }
        self.inner.next_file_id.fetch_max(id + 1, Ordering::Relaxed);
        EmFile::open_existing(self.clone(), id, len)
    }

    /// Ids of all `em-*.bin` block files present in the backing directory
    /// (empty on the memory backend, whose files live only in handles).
    pub fn list_file_ids(&self) -> Result<Vec<u64>> {
        let Backing::Directory { dir, .. } = &self.inner.backing else {
            return Ok(Vec::new());
        };
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(id) = parse_block_file_name(&entry.file_name()) {
                ids.push(id);
            }
        }
        ids.sort_unstable();
        Ok(ids)
    }

    /// Remove block files in the backing directory whose id is not in
    /// `keep`, plus any stale `*.journal.tmp` left by an interrupted
    /// journal commit. Returns the ids of the removed block files.
    ///
    /// This is the resume-time orphan sweep: after a crash, temporary files
    /// of the interrupted attempt may survive on disk without being
    /// referenced by any journal. Callers must list *every* live file
    /// (journaled manifest files plus independently-opened inputs) — the
    /// sweep assumes one job per backing directory.
    pub fn gc_orphans(&self, keep: &[u64]) -> Result<Vec<u64>> {
        let Backing::Directory { dir, .. } = &self.inner.backing else {
            return Ok(Vec::new());
        };
        let mut removed = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            let name = entry.file_name();
            if let Some(id) = parse_block_file_name(&name) {
                if !keep.contains(&id) {
                    std::fs::remove_file(entry.path())?;
                    removed.push(id);
                }
            } else if name.to_string_lossy().ends_with(".journal.tmp") {
                std::fs::remove_file(entry.path())?;
            }
        }
        removed.sort_unstable();
        Ok(removed)
    }

    pub(crate) fn journal_get(&self, name: &str) -> Option<String> {
        lock_ok(&self.inner.journals).get(name).cloned()
    }

    pub(crate) fn journal_put(&self, name: &str, doc: String) {
        lock_ok(&self.inner.journals).insert(name.into(), doc);
    }

    pub(crate) fn journal_remove(&self, name: &str) {
        lock_ok(&self.inner.journals).remove(name);
    }

    /// Install a [`FaultPlan`]: every subsequent block transfer on this
    /// context (both backends) consults the plan. Pass a clone and keep one
    /// handle to inspect [`FaultPlan::injected`] or to
    /// [`FaultPlan::clear_crash`].
    pub fn install_fault_plan(&self, plan: FaultPlan) {
        *lock_ok(&self.inner.fault_plan) = Some(plan);
        self.inner
            .fault_armed
            .store(true, std::sync::atomic::Ordering::Relaxed);
    }

    /// Remove any installed fault plan.
    pub fn clear_fault_plan(&self) {
        *lock_ok(&self.inner.fault_plan) = None;
        self.inner
            .fault_armed
            .store(false, std::sync::atomic::Ordering::Relaxed);
    }

    /// The installed fault plan, if any. A relaxed armed-flag check keeps
    /// the no-faults case lock-free on the per-transfer path.
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        if !self
            .inner
            .fault_armed
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            return None;
        }
        lock_ok(&self.inner.fault_plan).clone()
    }

    /// Set the retry policy applied to every block transfer.
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        *lock_ok(&self.inner.retry_policy) = policy;
    }

    /// The current retry policy.
    #[inline]
    pub fn retry_policy(&self) -> RetryPolicy {
        *lock_ok(&self.inner.retry_policy)
    }

    /// Virtual backoff ticks accumulated by retried I/Os (see
    /// [`RetryPolicy`]).
    pub fn backoff_ticks(&self) -> u64 {
        self.inner.backoff_ticks.load(Ordering::Relaxed)
    }

    pub(crate) fn note_backoff(&self, ticks: u64) {
        self.inner.backoff_ticks.fetch_add(ticks, Ordering::Relaxed);
    }

    /// Run `f` as an *oracle*: I/O accounting is paused and fault injection
    /// is suspended, so verification scans neither show up in [`IoStats`]
    /// nor consume the fault schedule. A pending crash still blocks I/O.
    pub fn oracle<R>(&self, f: impl FnOnce() -> R) -> R {
        let plan = self.fault_plan();
        match plan {
            Some(p) => self.inner.stats.paused(|| p.suspended(f)),
            None => self.inner.stats.paused(f),
        }
    }

    /// The backing directory for file-backed contexts (`None` in memory).
    pub fn backing_dir(&self) -> Option<PathBuf> {
        match &self.inner.backing {
            Backing::Memory => None,
            Backing::Directory { dir, .. } => Some(dir.clone()),
        }
    }

    /// Allocate a memory-metered buffer of `cap` records of `T`.
    ///
    /// # Panics
    ///
    /// In strict mode, panics on a budget violation; algorithm code should
    /// prefer [`EmContext::try_tracked_vec`].
    pub fn tracked_vec<T: Record>(&self, cap: usize, context: &str) -> TrackedVec<T> {
        TrackedVec::with_capacity(&self.inner.mem, cap, T::WORDS, context)
    }

    /// Allocate a memory-metered buffer of `cap` plain words (for
    /// bookkeeping arrays: counts, ranks, flags...).
    ///
    /// # Panics
    ///
    /// In strict mode, panics on a budget violation; algorithm code should
    /// prefer [`EmContext::try_tracked_words`].
    pub fn tracked_words<T>(&self, cap: usize, context: &str) -> TrackedVec<T> {
        TrackedVec::with_capacity(&self.inner.mem, cap, 1, context)
    }

    /// Allocate a memory-metered buffer of `cap` items charged at an
    /// explicit `words_per_item` (for composite bookkeeping entries that
    /// are not themselves [`Record`]s).
    ///
    /// # Panics
    ///
    /// In strict mode, panics on a budget violation; algorithm code should
    /// prefer [`EmContext::try_tracked_buf`].
    pub fn tracked_buf<T>(
        &self,
        cap: usize,
        words_per_item: usize,
        context: &str,
    ) -> TrackedVec<T> {
        TrackedVec::with_capacity(&self.inner.mem, cap, words_per_item, context)
    }

    /// Fallible variant of [`EmContext::tracked_vec`]: a strict budget
    /// violation comes back as [`crate::EmError::MemoryExceeded`] (and is
    /// counted in [`crate::Counters::mem_denials`]) instead of panicking.
    pub fn try_tracked_vec<T: Record>(&self, cap: usize, context: &str) -> Result<TrackedVec<T>> {
        self.note_denial(TrackedVec::try_with_capacity(
            &self.inner.mem,
            cap,
            T::WORDS,
            context,
        ))
    }

    /// Fallible variant of [`EmContext::tracked_words`].
    pub fn try_tracked_words<T>(&self, cap: usize, context: &str) -> Result<TrackedVec<T>> {
        self.note_denial(TrackedVec::try_with_capacity(
            &self.inner.mem,
            cap,
            1,
            context,
        ))
    }

    /// Fallible variant of [`EmContext::tracked_buf`].
    pub fn try_tracked_buf<T>(
        &self,
        cap: usize,
        words_per_item: usize,
        context: &str,
    ) -> Result<TrackedVec<T>> {
        self.note_denial(TrackedVec::try_with_capacity(
            &self.inner.mem,
            cap,
            words_per_item,
            context,
        ))
    }

    /// Fallible raw charge of `words` bookkeeping words against the dynamic
    /// budget (the [`Result`] twin of `ctx.mem().charge(..)`), counting
    /// denials in stats.
    pub fn try_charge_words(&self, words: usize, context: &str) -> Result<MemCharge> {
        self.note_denial(self.inner.mem.try_charge(words, context))
    }

    /// Count a strict-mode memory denial in stats, passing the result
    /// through (typed denials are observable, not silent).
    fn note_denial<T>(&self, r: Result<T>) -> Result<T> {
        if let Err(crate::error::EmError::MemoryExceeded { .. }) = &r {
            self.inner.stats.record_mem_denial();
        }
        r
    }

    pub(crate) fn file_path(&self, id: u64) -> Option<PathBuf> {
        match &self.inner.backing {
            Backing::Memory => None,
            Backing::Directory { dir, .. } => Some(dir.join(format!("em-{id:08}.bin"))),
        }
    }
}

/// Lock a mutex, recovering the data from a poisoned lock (a panicking
/// worker must not wedge the shared context for everyone else).
fn lock_ok<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Parse `em-<id>.bin` back to its id (inverse of [`EmContext::file_path`]).
fn parse_block_file_name(name: &std::ffi::OsStr) -> Option<u64> {
    let s = name.to_str()?;
    s.strip_prefix("em-")?.strip_suffix(".bin")?.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_stats() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let ctx2 = ctx.clone();
        ctx.stats().record_comparisons(3);
        assert_eq!(ctx2.stats().snapshot().comparisons, 3);
    }

    #[test]
    fn mem_records_scales_with_record_width() {
        let ctx = EmContext::new_in_memory(EmConfig::new(1000, 10).unwrap());
        assert_eq!(ctx.mem_records::<u64>(), 1000);
        assert_eq!(ctx.mem_records::<crate::record::KeyValue>(), 500);
    }

    #[test]
    fn temp_dir_cleanup() {
        let dir;
        {
            let ctx = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
            dir = match &ctx.inner.backing {
                Backing::Directory { dir, .. } => dir.clone(),
                _ => unreachable!(),
            };
            assert!(dir.exists());
        }
        assert!(!dir.exists(), "temp dir should be removed on drop");
    }

    #[test]
    fn contexts_share_a_supplied_metrics_registry() {
        let registry = MetricsRegistry::new();
        registry.set_enabled(true);
        let a = EmContext::new_in_memory_with_metrics(EmConfig::tiny(), registry.clone());
        let b = EmContext::new_in_memory_with_metrics(EmConfig::tiny(), registry.clone());
        // Both contexts registered the same device histograms; their
        // samples land in the same cells of the shared registry.
        a.inner.device_read_us.record(10);
        b.inner.device_read_us.record(20);
        let snap = registry.snapshot(0);
        let s = snap
            .find("em_device_read_us", &[])
            .expect("shared family registered once");
        assert_eq!(s.hist.as_ref().unwrap().count(), 2);
    }

    #[test]
    fn context_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EmContext>();
    }

    #[test]
    fn file_ids_unique_across_threads() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut ids: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let ctx = ctx.clone();
                    s.spawn(move || {
                        (0..25)
                            .map(|_| ctx.create_file::<u64>().unwrap().id())
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect()
        });
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 100, "no two files may share an id");
    }

    #[test]
    fn on_disk_creates_dir_and_keeps_it() {
        let base = std::env::temp_dir().join(format!("emcore-test-{}", std::process::id()));
        {
            let _ctx = EmContext::new_on_disk(EmConfig::tiny(), &base).unwrap();
            assert!(base.exists());
        }
        assert!(base.exists());
        std::fs::remove_dir_all(&base).unwrap();
    }
}
