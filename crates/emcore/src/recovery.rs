//! Unified driver for crash-recoverable jobs.
//!
//! The workspace has three checkpointed algorithms — external sort
//! (`emsort`), multi-selection (`emselect`) and approximate partitioning
//! (`apsplit`). Each one keeps a durable manifest in a named
//! [`crate::Journal`], redoes at most one in-flight work unit after a
//! crash, and sweeps orphaned block files on resume. Historically each
//! crate also had its own `resume_*` entry point repeating the same
//! skeleton: refuse a completed manifest, validate the input identity,
//! then drive from the last checkpoint.
//!
//! That skeleton now lives here, once. An algorithm exposes itself as a
//! [`RecoverableJob`] and callers run it through [`run_recoverable`]:
//!
//! ```text
//! let mut job = SortJob::new(&input, &mut manifest);
//! let out = emcore::recovery::run_recoverable(input.ctx(), &mut job)?;
//! ```
//!
//! The old per-crate `resume_*` functions survive as thin `#[deprecated]`
//! wrappers over this entry point.

use crate::ctx::EmContext;
use crate::error::{EmError, Result};

/// A checkpointed, resumable unit of work over an [`EmContext`].
///
/// Implementations carry their input handle and manifest; the trait
/// factors out the *driver protocol* shared by every recoverable
/// algorithm:
///
/// 1. a completed job must not be rerun ([`RecoverableJob::is_done`]),
/// 2. the manifest must belong to the presented input
///    ([`RecoverableJob::check_input`] — which *binds* the identity on a
///    fresh manifest), and
/// 3. [`RecoverableJob::drive`] continues from the last durable
///    checkpoint to completion or the next terminal error, and is
///    idempotent over failures (only the interrupted work unit is
///    redone on the next call).
pub trait RecoverableJob {
    /// What a completed job yields.
    type Output;

    /// The public entry-point name used in error messages
    /// (e.g. `"resume_sort"`).
    fn kind(&self) -> &'static str;

    /// The name of the durable [`crate::Journal`] this job checkpoints
    /// under — one fixed name per algorithm, so a resuming process knows
    /// where to look.
    fn journal_name(&self) -> &'static str;

    /// Whether the job already completed and yielded its output. Driving
    /// a completed job is an error (its temporaries are gone).
    fn is_done(&self) -> bool;

    /// Validate the manifest's recorded input identity against the input
    /// handle the job was built with, *binding* it on first run. Fails
    /// when a manifest is replayed against a different file.
    fn check_input(&mut self) -> Result<()>;

    /// Continue from the last durable checkpoint until completion or the
    /// next terminal error. Phase accounting is the job's own business
    /// (each algorithm keeps its historical phase names).
    fn drive(&mut self, ctx: &EmContext) -> Result<Self::Output>;
}

/// Drive `job` forward on `ctx` from wherever its manifest left off,
/// until completion or the next terminal error.
///
/// Idempotent over failures: call once to start, and call again with the
/// same job after handling an error (e.g. clearing a simulated crash
/// with [`crate::FaultPlan::clear_crash`]) — only the interrupted work
/// unit is redone.
///
/// # Errors
///
/// Fails fast (before any I/O) if the job already completed or its
/// manifest belongs to a different input; otherwise propagates the
/// job's own terminal errors.
pub fn run_recoverable<J: RecoverableJob>(ctx: &EmContext, job: &mut J) -> Result<J::Output> {
    if job.is_done() {
        return Err(EmError::config(format!(
            "{}: manifest already completed; create a fresh one",
            job.kind()
        )));
    }
    job.check_input()?;
    job.drive(ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EmConfig;

    struct FakeJob {
        done: bool,
        bound: Option<u64>,
        presented: u64,
        drives: u32,
    }

    impl RecoverableJob for FakeJob {
        type Output = u64;
        fn kind(&self) -> &'static str {
            "resume_fake"
        }
        fn journal_name(&self) -> &'static str {
            "fake-manifest"
        }
        fn is_done(&self) -> bool {
            self.done
        }
        fn check_input(&mut self) -> Result<()> {
            match self.bound {
                None => {
                    self.bound = Some(self.presented);
                    Ok(())
                }
                Some(b) if b == self.presented => Ok(()),
                Some(b) => Err(EmError::config(format!(
                    "resume_fake: manifest belongs to input {b}, got {}",
                    self.presented
                ))),
            }
        }
        fn drive(&mut self, _ctx: &EmContext) -> Result<u64> {
            self.drives += 1;
            self.done = true;
            Ok(42)
        }
    }

    #[test]
    fn runs_and_binds_fresh_job() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut job = FakeJob {
            done: false,
            bound: None,
            presented: 7,
            drives: 0,
        };
        assert_eq!(run_recoverable(&ctx, &mut job).unwrap(), 42);
        assert_eq!(job.bound, Some(7));
        assert_eq!(job.drives, 1);
    }

    #[test]
    fn refuses_completed_job() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut job = FakeJob {
            done: true,
            bound: None,
            presented: 7,
            drives: 0,
        };
        let err = run_recoverable(&ctx, &mut job).unwrap_err();
        assert!(err.to_string().contains("already completed"), "{err}");
        assert_eq!(job.drives, 0, "a completed job must not be driven");
    }

    #[test]
    fn refuses_wrong_input() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let mut job = FakeJob {
            done: false,
            bound: Some(3),
            presented: 7,
            drives: 0,
        };
        assert!(run_recoverable(&ctx, &mut job).is_err());
        assert_eq!(job.drives, 0);
    }
}
