//! Time sources for the runtime's schedulers and samplers.
//!
//! Everything in the workspace that *reads* time — the serve scheduler's
//! batching window and deadlines, the circuit-breaker cooldowns, the
//! metrics [`crate::metrics::Sampler`] timestamps — goes through the
//! [`Clock`] trait instead of calling [`std::time::Instant::now`]
//! directly. Production code uses [`WallClock`]; tests install a
//! [`ManualClock`] on the context ([`crate::EmContext::set_clock`]) and
//! advance it explicitly, turning timing-dependent behavior (deadline
//! shedding, breaker half-open transitions) into deterministic unit
//! tests instead of sleep-and-hope ones.
//!
//! The unit is microseconds since the clock's own epoch: every consumer
//! only ever subtracts two readings, so the epoch is arbitrary.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotone microsecond counter. Implementations must never go
/// backwards.
pub trait Clock: Send + Sync + std::fmt::Debug {
    /// Microseconds elapsed since this clock's epoch.
    fn now_us(&self) -> u64;
}

/// The real wall clock: microseconds since the instant the clock was
/// created (monotonic, via [`Instant`]).
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            epoch: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros().min(u64::MAX as u128) as u64
    }
}

/// A clock that only moves when told to — share one (via `Arc`) between
/// a test and the component under test, then [`ManualClock::advance`]
/// past deadlines and cooldowns deterministically.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at `start_us`.
    pub fn new(start_us: u64) -> Self {
        ManualClock {
            now: AtomicU64::new(start_us),
        }
    }

    /// Move the clock forward by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.fetch_add(us, Ordering::SeqCst);
    }

    /// Jump to an absolute reading. Panics (debug) if it would go
    /// backwards — clocks are monotone.
    pub fn set(&self, us: u64) {
        let prev = self.now.swap(us, Ordering::SeqCst);
        debug_assert!(us >= prev, "ManualClock must not go backwards");
    }
}

impl Clock for ManualClock {
    fn now_us(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotone() {
        let c = WallClock::new();
        let a = c.now_us();
        let b = c.now_us();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_when_told() {
        let c = ManualClock::new(100);
        assert_eq!(c.now_us(), 100);
        assert_eq!(c.now_us(), 100);
        c.advance(50);
        assert_eq!(c.now_us(), 150);
        c.set(1_000);
        assert_eq!(c.now_us(), 1_000);
    }

    #[test]
    fn manual_clock_is_shareable_across_threads() {
        let c = std::sync::Arc::new(ManualClock::new(0));
        let c2 = c.clone();
        let h = std::thread::spawn(move || {
            c2.advance(10);
            c2.now_us()
        });
        assert_eq!(h.join().unwrap(), 10);
        assert_eq!(c.now_us(), 10);
    }
}
