//! Live metrics: atomic counters, gauges, and log-linear latency
//! histograms behind an [`MetricsRegistry`], plus a background
//! [`Sampler`] that snapshots the registry into a JSONL time series.
//!
//! The trace subsystem ([`crate::trace`]) answers *"what happened?"*
//! after a run; this module answers *"what is happening?"* during one —
//! p99 latency right now, how full the batches are, whether a breaker is
//! flapping. The design contract mirrors the tracer's:
//!
//! * **Off by default, one branch when off.** Every instrument handle
//!   shares the registry's enabled flag; a `record()`/`inc()`/`set()`
//!   on a disabled registry is a single relaxed atomic load and an early
//!   return — no allocation, no locks, no time reads. A run with metrics
//!   disabled is bit-identical (I/O counters, outputs) to one on a build
//!   that never heard of metrics.
//! * **Lock-free hot path when on.** Recording is one relaxed
//!   `fetch_add` on a pre-registered atomic (the histogram bucket, the
//!   counter cell). The registry's mutex is touched only at registration
//!   and snapshot time.
//! * **Mergeable, saturating histograms.** The fixed log-linear bucket
//!   layout (HDR-style: [`SUB`] linear sub-buckets per power of two,
//!   [`HIST_BUCKETS`] total) covers the full `u64` range, so
//!   `record(u64::MAX)` lands in the top bucket instead of panicking,
//!   and any two snapshots — from different processes, runs, or points
//!   in time — merge by bucket-wise addition.
//!
//! Timestamps come from a [`Clock`](crate::clock::Clock) so tests drive
//! a [`ManualClock`](crate::clock::ManualClock) deterministically.
//! Snapshots serialize with the same hand-rolled JSONL codec the tracer
//! uses (one flat object per metric sample per tick) and render back
//! into per-metric summaries via [`render_series_report`]. A
//! Prometheus-style text exposition ([`MetricsRegistry::expose`]) backs
//! the serve protocol's `metrics` verb.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use crate::clock::Clock;
use crate::error::{EmError, Result};
use crate::trace::{get_num_or_zero, get_str, parse_object, JVal, JsonObj};

// ---------------------------------------------------------------------------
// Bucket geometry
// ---------------------------------------------------------------------------

/// Linear sub-buckets per power-of-two range (`2^SUB_BITS`).
const SUB_BITS: u32 = 3;
/// Sub-bucket count: values below `SUB` get one bucket each.
pub const SUB: usize = 1 << SUB_BITS;
/// Total buckets in the fixed log-linear layout: `SUB` unit buckets for
/// values `0..SUB`, then `SUB` sub-buckets for every power-of-two range
/// `[2^k, 2^{k+1})`, `k = SUB_BITS..=63`. Covers all of `u64`.
pub const HIST_BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket a value lands in. Total over `u64`; power-of-two values
/// land exactly on a bucket's lower bound (see [`bucket_floor`]).
pub fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize;
        let sub = ((v >> (msb - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
        SUB + (msb - SUB_BITS as usize) * SUB + sub
    }
}

/// The smallest value that maps to bucket `i` — the value a percentile
/// query reports for samples in that bucket (a lower bound, so reported
/// quantiles never exceed the true ones). Relative error is bounded by
/// `2^-SUB_BITS` (12.5%).
pub fn bucket_floor(i: usize) -> u64 {
    debug_assert!(i < HIST_BUCKETS);
    if i < SUB {
        i as u64
    } else {
        let d = i - SUB;
        let msb = SUB_BITS as usize + d / SUB;
        let sub = (d % SUB) as u64;
        (1u64 << msb) + (sub << (msb - SUB_BITS as usize))
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// What a registered metric is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone non-decreasing event count.
    Counter,
    /// A point-in-time level, overwritten by [`Gauge::set`].
    Gauge,
    /// A log-linear value distribution ([`Histogram::record`]).
    Histogram,
}

impl MetricKind {
    /// Stable lowercase label (JSONL field, schema files).
    pub fn label(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }

    fn from_label(s: &str) -> Option<Self> {
        match s {
            "counter" => Some(MetricKind::Counter),
            "gauge" => Some(MetricKind::Gauge),
            "histogram" => Some(MetricKind::Histogram),
            _ => None,
        }
    }

    /// The `# TYPE` token in the Prometheus exposition (histograms are
    /// exposed as quantile summaries).
    pub fn exposition_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "summary",
        }
    }
}

#[derive(Debug)]
struct ScalarCell {
    enabled: Arc<AtomicBool>,
    value: AtomicU64,
}

/// A monotone event counter. Cloning shares the cell; recording on a
/// disabled registry is one branch.
#[derive(Debug, Clone)]
pub struct Counter {
    cell: Arc<ScalarCell>,
}

impl Counter {
    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if !self.cell.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.cell.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time level. Cloning shares the cell.
#[derive(Debug, Clone)]
pub struct Gauge {
    cell: Arc<ScalarCell>,
}

impl Gauge {
    /// Overwrite the level.
    #[inline]
    pub fn set(&self, v: u64) {
        if !self.cell.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.cell.value.store(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn value(&self) -> u64 {
        self.cell.value.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCell {
    enabled: Arc<AtomicBool>,
    buckets: Box<[AtomicU64]>,
}

/// A log-linear value distribution with the fixed [`HIST_BUCKETS`]
/// layout. Cloning shares the cell; `record` is one branch + one
/// relaxed `fetch_add` — no locks, no allocation, total over `u64`.
#[derive(Debug, Clone)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Record one observation of `v`.
    #[inline]
    pub fn record(&self, v: u64) {
        if !self.cell.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.cell.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of the distribution.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = BTreeMap::new();
        for (i, b) in self.cell.buckets.iter().enumerate() {
            let c = b.load(Ordering::Relaxed);
            if c != 0 {
                buckets.insert(i, c);
            }
        }
        HistogramSnapshot { buckets }
    }
}

/// A frozen histogram: sparse bucket → count map. Mergeable (bucket-wise
/// saturating addition — associative and commutative) and serializable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Non-empty buckets: layout index ([`bucket_floor`]) → sample count.
    pub buckets: BTreeMap<usize, u64>,
}

impl HistogramSnapshot {
    /// Total recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets
            .values()
            .fold(0u64, |a, &c| a.saturating_add(c))
    }

    /// Fold `other` into `self` (bucket-wise saturating add).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (&i, &c) in &other.buckets {
            let e = self.buckets.entry(i).or_insert(0);
            *e = e.saturating_add(c);
        }
    }

    /// The value at percentile `p` (0–100): the [`bucket_floor`] of the
    /// bucket holding the `ceil(p/100 · count)`-th smallest sample.
    /// Monotone in `p`; 0 for an empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((p / 100.0) * count as f64).ceil().clamp(1.0, count as f64) as u64;
        let mut cum = 0u64;
        for (&i, &c) in &self.buckets {
            cum = cum.saturating_add(c);
            if cum >= target {
                return bucket_floor(i);
            }
        }
        self.max()
    }

    /// Lower bound of the largest recorded sample (the floor of the
    /// highest non-empty bucket); 0 when empty.
    pub fn max(&self) -> u64 {
        self.buckets
            .keys()
            .next_back()
            .map(|&i| bucket_floor(i))
            .unwrap_or(0)
    }

    /// The counts newly recorded since `earlier` (bucket-wise saturating
    /// subtraction) — e.g. the distribution of one run phase between two
    /// snapshots of a cumulative histogram.
    pub fn since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = BTreeMap::new();
        for (&i, &c) in &self.buckets {
            let prev = earlier.buckets.get(&i).copied().unwrap_or(0);
            let d = c.saturating_sub(prev);
            if d != 0 {
                buckets.insert(i, d);
            }
        }
        HistogramSnapshot { buckets }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Child {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Family {
    kind: MetricKind,
    help: String,
    /// Canonical label string → (label pairs, instrument).
    children: BTreeMap<String, (Vec<(String, String)>, Child)>,
}

#[derive(Debug)]
struct RegistryInner {
    enabled: Arc<AtomicBool>,
    families: Mutex<BTreeMap<String, Family>>,
}

/// The shared metric store: register instruments once (cold, under a
/// mutex), record through the returned handles (hot, lock-free), then
/// [`MetricsRegistry::snapshot`] or [`MetricsRegistry::expose`] the
/// whole thing. Clones share state. Disabled (the default) until
/// [`MetricsRegistry::set_enabled`] — see the module docs for the
/// overhead contract.
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

fn label_key(labels: &[(String, String)]) -> String {
    let mut out = String::new();
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        crate::trace::escape_json(v, &mut out);
        out.push('"');
    }
    out
}

impl MetricsRegistry {
    /// A fresh, disabled registry.
    pub fn new() -> Self {
        MetricsRegistry {
            inner: Arc::new(RegistryInner {
                enabled: Arc::new(AtomicBool::new(false)),
                families: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Whether recording is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off. Existing handles observe the flip; the
    /// stored values are retained across an off/on cycle.
    pub fn set_enabled(&self, on: bool) {
        self.inner.enabled.store(on, Ordering::SeqCst);
    }

    fn child(&self, name: &str, help: &str, kind: MetricKind, labels: &[(&str, &str)]) -> Child {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let key = label_key(&labels);
        let mut fams = self.inner.families.lock().expect("metrics registry lock");
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            children: BTreeMap::new(),
        });
        assert!(
            fam.kind == kind,
            "metric {name:?} registered as {} and {}",
            fam.kind.label(),
            kind.label()
        );
        let enabled = self.inner.enabled.clone();
        let (_, child) = fam.children.entry(key).or_insert_with(|| {
            let child = match kind {
                MetricKind::Counter => Child::Counter(Counter {
                    cell: Arc::new(ScalarCell {
                        enabled,
                        value: AtomicU64::new(0),
                    }),
                }),
                MetricKind::Gauge => Child::Gauge(Gauge {
                    cell: Arc::new(ScalarCell {
                        enabled,
                        value: AtomicU64::new(0),
                    }),
                }),
                MetricKind::Histogram => Child::Histogram(Histogram {
                    cell: Arc::new(HistogramCell {
                        enabled,
                        buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
                    }),
                }),
            };
            (labels, child)
        });
        child.clone()
    }

    /// Register (or re-fetch) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Register (or re-fetch) a labeled counter. Same `(name, labels)`
    /// always yields a handle to the same cell.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.child(name, help, MetricKind::Counter, labels) {
            Child::Counter(c) => c,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Register (or re-fetch) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Register (or re-fetch) a labeled gauge.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.child(name, help, MetricKind::Gauge, labels) {
            Child::Gauge(g) => g,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Register (or re-fetch) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Histogram {
        self.histogram_with(name, help, &[])
    }

    /// Register (or re-fetch) a labeled histogram.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.child(name, help, MetricKind::Histogram, labels) {
            Child::Histogram(h) => h,
            _ => unreachable!("kind checked in child()"),
        }
    }

    /// Freeze every registered instrument at `t_us` (a [`Clock`]
    /// reading).
    pub fn snapshot(&self, t_us: u64) -> MetricsSnapshot {
        let fams = self.inner.families.lock().expect("metrics registry lock");
        let mut samples = Vec::new();
        for (name, fam) in fams.iter() {
            for (labels, child) in fam.children.values() {
                let (value, hist) = match child {
                    Child::Counter(c) => (c.value(), None),
                    Child::Gauge(g) => (g.value(), None),
                    Child::Histogram(h) => {
                        let s = h.snapshot();
                        (s.count(), Some(s))
                    }
                };
                samples.push(MetricSample {
                    name: name.clone(),
                    kind: fam.kind,
                    labels: labels.clone(),
                    value,
                    hist,
                });
            }
        }
        MetricsSnapshot { t_us, samples }
    }

    /// Prometheus-style text exposition: `# HELP`/`# TYPE` headers per
    /// family, one line per child (histograms as quantile summaries with
    /// `_count`/`_max` companions). Stable order (families and children
    /// sorted by name/labels).
    pub fn expose(&self) -> String {
        let fams = self.inner.families.lock().expect("metrics registry lock");
        let mut out = String::new();
        for (name, fam) in fams.iter() {
            out.push_str(&format!("# HELP {name} {}\n", fam.help));
            out.push_str(&format!("# TYPE {name} {}\n", fam.kind.exposition_type()));
            for (key, (_, child)) in &fam.children {
                let braced = |extra: &str| -> String {
                    match (key.is_empty(), extra.is_empty()) {
                        (true, true) => String::new(),
                        (true, false) => format!("{{{extra}}}"),
                        (false, true) => format!("{{{key}}}"),
                        (false, false) => format!("{{{key},{extra}}}"),
                    }
                };
                match child {
                    Child::Counter(c) => {
                        out.push_str(&format!("{name}{} {}\n", braced(""), c.value()));
                    }
                    Child::Gauge(g) => {
                        out.push_str(&format!("{name}{} {}\n", braced(""), g.value()));
                    }
                    Child::Histogram(h) => {
                        let s = h.snapshot();
                        for (q, p) in [
                            ("0.5", 50.0),
                            ("0.9", 90.0),
                            ("0.99", 99.0),
                            ("0.999", 99.9),
                        ] {
                            out.push_str(&format!(
                                "{name}{} {}\n",
                                braced(&format!("quantile=\"{q}\"")),
                                s.percentile(p)
                            ));
                        }
                        out.push_str(&format!("{name}_count{} {}\n", braced(""), s.count()));
                        out.push_str(&format!("{name}_max{} {}\n", braced(""), s.max()));
                    }
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Snapshots ↔ JSONL
// ---------------------------------------------------------------------------

/// One frozen instrument inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Family name (e.g. `em_serve_query_e2e_us`).
    pub name: String,
    /// Family kind.
    pub kind: MetricKind,
    /// Label pairs, in registration order.
    pub labels: Vec<(String, String)>,
    /// Counter/gauge value; for histograms, the total sample count.
    pub value: u64,
    /// The distribution (histograms only).
    pub hist: Option<HistogramSnapshot>,
}

impl MetricSample {
    /// The canonical `k="v",…` label string (empty when unlabeled).
    pub fn label_key(&self) -> String {
        label_key(&self.labels)
    }

    /// One JSONL line (no trailing newline). Labels are flattened to
    /// `l_<key>` string fields; histogram buckets to parallel
    /// `bidx`/`bcnt` arrays — the same flat-object codec the tracer
    /// uses.
    pub fn to_json(&self, t_us: u64) -> String {
        let mut o = JsonObj::new("metric");
        o.num("t_us", t_us)
            .str_("name", &self.name)
            .str_("kind", self.kind.label());
        for (k, v) in &self.labels {
            o.str_(&format!("l_{k}"), v);
        }
        o.num("value", self.value);
        if let Some(h) = &self.hist {
            let idx: Vec<u64> = h.buckets.keys().map(|&i| i as u64).collect();
            let cnt: Vec<u64> = h.buckets.values().copied().collect();
            o.arr("bidx", &idx).arr("bcnt", &cnt);
        }
        o.finish()
    }

    /// Parse one line produced by [`MetricSample::to_json`]; returns the
    /// timestamp and the sample.
    pub fn parse(line: &str) -> std::result::Result<(u64, MetricSample), String> {
        let map = parse_object(line)?;
        let e = get_str(&map, "e")?;
        if e != "metric" {
            return Err(format!("not a metric line (e={e:?})"));
        }
        let kind_label = get_str(&map, "kind")?;
        let kind = MetricKind::from_label(&kind_label)
            .ok_or_else(|| format!("unknown metric kind {kind_label:?}"))?;
        let mut labels = Vec::new();
        for (k, v) in map.iter() {
            if let (Some(name), JVal::Str(s)) = (k.strip_prefix("l_"), v) {
                labels.push((name.to_string(), s.clone()));
            }
        }
        let hist = if kind == MetricKind::Histogram {
            let idx = match map.get("bidx") {
                Some(JVal::Arr(v)) => v.clone(),
                _ => Vec::new(),
            };
            let cnt = match map.get("bcnt") {
                Some(JVal::Arr(v)) => v.clone(),
                _ => Vec::new(),
            };
            if idx.len() != cnt.len() {
                return Err(format!(
                    "bidx/bcnt length mismatch: {} vs {}",
                    idx.len(),
                    cnt.len()
                ));
            }
            let mut buckets = BTreeMap::new();
            for (&i, &c) in idx.iter().zip(&cnt) {
                if i as usize >= HIST_BUCKETS {
                    return Err(format!("bucket index {i} out of range"));
                }
                buckets.insert(i as usize, c);
            }
            Some(HistogramSnapshot { buckets })
        } else {
            None
        };
        Ok((
            get_num_or_zero(&map, "t_us"),
            MetricSample {
                name: get_str(&map, "name")?,
                kind,
                labels,
                value: get_num_or_zero(&map, "value"),
                hist,
            },
        ))
    }
}

/// Everything a registry held at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// The [`Clock`] reading the snapshot was taken at.
    pub t_us: u64,
    /// One entry per registered (name, labels) instrument.
    pub samples: Vec<MetricSample>,
}

impl MetricsSnapshot {
    /// Serialize as JSONL: one line per sample, trailing newline.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for s in &self.samples {
            out.push_str(&s.to_json(self.t_us));
            out.push('\n');
        }
        out
    }

    /// The first sample matching `name` (and `labels` when non-empty:
    /// every given pair must be present on the sample).
    pub fn find(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        self.samples.iter().find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(sk, sv)| sk == k && sv == v))
        })
    }

    /// Sum of `value` over every sample of family `name` (for a
    /// histogram family: total recorded observations across children).
    pub fn family_total(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .fold(0u64, |a, s| a.saturating_add(s.value))
    }
}

// ---------------------------------------------------------------------------
// Sampler
// ---------------------------------------------------------------------------

/// A background thread that appends a [`MetricsSnapshot`] of a registry
/// to a JSONL file on a fixed interval (timestamps from the given
/// [`Clock`]). Stop it with [`Sampler::stop`] to flush and surface any
/// write error; dropping it stops best-effort.
#[derive(Debug)]
pub struct Sampler {
    stop: mpsc::Sender<()>,
    handle: Option<std::thread::JoinHandle<std::io::Result<()>>>,
}

impl Sampler {
    /// Start sampling `registry` every `interval` into the JSONL file at
    /// `path` (created/truncated). A disabled registry is not sampled —
    /// ticks are skipped until it is enabled. A final snapshot is
    /// written on [`Sampler::stop`].
    pub fn to_file(
        registry: MetricsRegistry,
        clock: Arc<dyn Clock>,
        interval: Duration,
        path: impl AsRef<std::path::Path>,
    ) -> Result<Sampler> {
        let file = std::fs::File::create(path)?;
        let mut w = std::io::BufWriter::new(file);
        let (stop, stop_rx) = mpsc::channel::<()>();
        let interval = interval.max(Duration::from_millis(1));
        let handle = std::thread::spawn(move || -> std::io::Result<()> {
            let tick = |w: &mut std::io::BufWriter<std::fs::File>| -> std::io::Result<()> {
                if registry.enabled() {
                    let snap = registry.snapshot(clock.now_us());
                    w.write_all(snap.to_jsonl().as_bytes())?;
                    w.flush()?;
                }
                Ok(())
            };
            loop {
                match stop_rx.recv_timeout(interval) {
                    Err(mpsc::RecvTimeoutError::Timeout) => tick(&mut w)?,
                    Ok(()) | Err(mpsc::RecvTimeoutError::Disconnected) => {
                        tick(&mut w)?;
                        return Ok(());
                    }
                }
            }
        });
        Ok(Sampler {
            stop,
            handle: Some(handle),
        })
    }

    /// Write a final snapshot, flush, and join the thread. Errors from
    /// any write along the way surface here.
    pub fn stop(mut self) -> Result<()> {
        let _ = self.stop.send(());
        let handle = self.handle.take().expect("sampler joined once");
        match handle.join() {
            Ok(r) => r.map_err(EmError::from),
            Err(_) => Err(EmError::unavailable("metrics sampler thread panicked")),
        }
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        let _ = self.stop.send(());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Series report (the `emsplit metrics-report` renderer)
// ---------------------------------------------------------------------------

struct Series {
    kind: MetricKind,
    first_t: u64,
    last_t: u64,
    first: u64,
    last: u64,
    min: u64,
    max: u64,
    ticks: u64,
    hist: Option<HistogramSnapshot>,
}

/// Render a sampler JSONL series into per-metric summaries: counters get
/// first/last/delta, gauges get last/min/max, histograms get a
/// percentile table (p50/p90/p99/p99.9/max) from their final snapshot.
/// Errors on the first malformed line.
pub fn render_series_report(input: &str) -> std::result::Result<String, String> {
    let mut series: BTreeMap<String, Series> = BTreeMap::new();
    let mut lines = 0u64;
    for (no, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (t, s) = MetricSample::parse(line).map_err(|e| format!("line {}: {e}", no + 1))?;
        lines += 1;
        let label = s.label_key();
        let id = if label.is_empty() {
            s.name.clone()
        } else {
            format!("{}{{{label}}}", s.name)
        };
        let e = series.entry(id).or_insert(Series {
            kind: s.kind,
            first_t: t,
            last_t: t,
            first: s.value,
            last: s.value,
            min: s.value,
            max: s.value,
            ticks: 0,
            hist: None,
        });
        e.ticks += 1;
        e.last_t = t;
        e.last = s.value;
        e.min = e.min.min(s.value);
        e.max = e.max.max(s.value);
        if s.kind == MetricKind::Histogram {
            e.hist = s.hist;
        }
    }
    if lines == 0 {
        return Err("empty metrics series".into());
    }
    let span_us = series
        .values()
        .map(|s| s.last_t.saturating_sub(s.first_t))
        .max()
        .unwrap_or(0);
    let mut out = format!(
        "# metrics report — {lines} samples, {} series, span {} ms\n",
        series.len(),
        span_us / 1000
    );
    for (kind, title) in [
        (MetricKind::Counter, "counters"),
        (MetricKind::Gauge, "gauges"),
        (MetricKind::Histogram, "histograms"),
    ] {
        let group: Vec<(&String, &Series)> =
            series.iter().filter(|(_, s)| s.kind == kind).collect();
        if group.is_empty() {
            continue;
        }
        out.push_str(&format!("\n## {title}\n"));
        for (id, s) in group {
            match kind {
                MetricKind::Counter => out.push_str(&format!(
                    "{id}  first={} last={} delta={}\n",
                    s.first,
                    s.last,
                    s.last.saturating_sub(s.first)
                )),
                MetricKind::Gauge => out.push_str(&format!(
                    "{id}  last={} min={} max={}\n",
                    s.last, s.min, s.max
                )),
                MetricKind::Histogram => {
                    let h = s.hist.clone().unwrap_or_default();
                    out.push_str(&format!(
                        "{id}  count={} p50={} p90={} p99={} p99.9={} max={}\n",
                        h.count(),
                        h.percentile(50.0),
                        h.percentile(90.0),
                        h.percentile(99.0),
                        h.percentile(99.9),
                        h.max()
                    ));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn enabled_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.set_enabled(true);
        r
    }

    #[test]
    fn bucket_boundaries_are_exact_at_powers_of_two() {
        for k in 0..64u32 {
            let v = 1u64 << k;
            let i = bucket_index(v);
            assert_eq!(bucket_floor(i), v, "2^{k} must open its bucket");
            if v > 1 {
                // The value just below a power of two lands strictly lower.
                assert!(bucket_index(v - 1) < i, "2^{k} - 1 below 2^{k}");
            }
        }
    }

    #[test]
    fn buckets_tile_the_u64_range_in_order() {
        // Every bucket's floor maps back to itself, and floors are
        // strictly increasing — the layout is a partition of u64.
        let mut prev: Option<u64> = None;
        for i in 0..HIST_BUCKETS {
            let f = bucket_floor(i);
            assert_eq!(bucket_index(f), i, "floor of bucket {i}");
            if let Some(p) = prev {
                assert!(f > p, "floors strictly increase at {i}");
            }
            prev = Some(f);
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_merge_is_associative_and_commutative() {
        let r = enabled_registry();
        let snaps: Vec<HistogramSnapshot> = [
            &[1u64, 5, 9, 1 << 20][..],
            &[0, 0, 7, u64::MAX],
            &[3, 1 << 40, 1 << 40, 2],
        ]
        .iter()
        .enumerate()
        .map(|(i, vals)| {
            let h = r.histogram_with("m", "h", &[("i", &i.to_string())]);
            for &v in *vals {
                h.record(v);
            }
            h.snapshot()
        })
        .collect();
        let (a, b, c) = (&snaps[0], &snaps[1], &snaps[2]);
        let mut ab_c = a.clone();
        ab_c.merge(b);
        ab_c.merge(c);
        let mut bc = b.clone();
        bc.merge(c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc, "associative");
        let mut ba = b.clone();
        ba.merge(a);
        let mut ab = a.clone();
        ab.merge(b);
        assert_eq!(ab, ba, "commutative");
        assert_eq!(ab_c.count(), 12);
    }

    #[test]
    fn recording_u64_max_saturates_into_the_top_bucket() {
        let r = enabled_registry();
        let h = r.histogram("sat", "saturation");
        h.record(u64::MAX);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count(), 2);
        assert_eq!(s.buckets.len(), 1);
        assert!(s.max() >= 1 << 63);
        assert_eq!(s.percentile(50.0), s.max());
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let r = enabled_registry();
        let h = r.histogram("empty", "nothing recorded");
        let s = h.snapshot();
        assert_eq!(s.count(), 0);
        for p in [0.0, 50.0, 99.9, 100.0] {
            assert_eq!(s.percentile(p), 0);
        }
        assert_eq!(s.max(), 0);
    }

    #[test]
    fn percentiles_are_monotone_and_bounded() {
        let r = enabled_registry();
        let h = r.histogram("mono", "monotone percentiles");
        let mut x = 1u64;
        for _ in 0..1000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            h.record(x >> 40);
        }
        let s = h.snapshot();
        let mut prev = 0;
        for p in [1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let v = s.percentile(p);
            assert!(v >= prev, "p{p} regressed");
            prev = v;
        }
        assert!(prev <= s.max());
    }

    #[test]
    fn snapshot_jsonl_round_trips() {
        let r = enabled_registry();
        r.counter("c_total", "a counter").add(7);
        r.gauge_with("g", "a gauge", &[("ds", "alpha")]).set(42);
        let h = r.histogram_with(
            "h_us",
            "a histogram",
            &[("ds", "a\"b"), ("outcome", "exact")],
        );
        for v in [0, 1, 8, 1000, u64::MAX] {
            h.record(v);
        }
        let snap = r.snapshot(123_456);
        let jsonl = snap.to_jsonl();
        let mut parsed = Vec::new();
        for line in jsonl.lines() {
            let (t, s) = MetricSample::parse(line).expect(line);
            assert_eq!(t, 123_456);
            parsed.push(s);
        }
        assert_eq!(parsed, snap.samples, "lossless round trip");
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let r = MetricsRegistry::new();
        let c = r.counter("c_total", "counter");
        let g = r.gauge("g", "gauge");
        let h = r.histogram("h_us", "hist");
        c.add(5);
        g.set(9);
        h.record(1234);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.snapshot().count(), 0);
        // Flipping it on makes the same handles live.
        r.set_enabled(true);
        c.add(5);
        g.set(9);
        h.record(1234);
        assert_eq!(c.value(), 5);
        assert_eq!(g.value(), 9);
        assert_eq!(h.snapshot().count(), 1);
    }

    #[test]
    fn exposition_lists_every_family_once_with_kind() {
        let r = enabled_registry();
        r.counter("req_total", "requests").inc();
        r.gauge("depth", "queue depth").set(3);
        r.histogram_with("lat_us", "latency", &[("ds", "a")])
            .record(100);
        r.histogram_with("lat_us", "latency", &[("ds", "b")])
            .record(200);
        let text = r.expose();
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert_eq!(text.matches("# TYPE depth gauge").count(), 1);
        assert_eq!(text.matches("# TYPE lat_us summary").count(), 1);
        assert!(text.contains("req_total 1\n"));
        assert!(text.contains("depth 3\n"));
        assert!(text.contains("lat_us_count{ds=\"a\"} 1\n"));
        assert!(text.contains("lat_us{ds=\"b\",quantile=\"0.99\"}"));
    }

    #[test]
    fn sampler_writes_a_parseable_series_driven_by_a_manual_clock() {
        let dir = std::env::temp_dir().join(format!("em-metrics-sampler-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("series.jsonl");
        let r = enabled_registry();
        let c = r.counter("ticks_total", "ticks");
        let clock = Arc::new(ManualClock::new(1_000));
        let sampler =
            Sampler::to_file(r.clone(), clock.clone(), Duration::from_millis(5), &path).unwrap();
        for _ in 0..3 {
            c.inc();
            clock.advance(10_000);
            std::thread::sleep(Duration::from_millis(12));
        }
        sampler.stop().unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let mut seen = 0;
        let mut last_t = 0;
        for line in text.lines() {
            let (t, s) = MetricSample::parse(line).expect(line);
            assert_eq!(s.name, "ticks_total");
            assert!(t >= last_t, "timestamps are monotone");
            last_t = t;
            seen += 1;
        }
        assert!(seen >= 2, "at least interval tick + final snapshot");
        assert!(last_t >= 21_000, "manual clock drove the timestamps");
        let report = render_series_report(&text).unwrap();
        assert!(report.contains("ticks_total"), "{report}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn series_report_renders_percentile_tables() {
        let r = enabled_registry();
        let h = r.histogram_with("lat_us", "latency", &[("ds", "a")]);
        for v in 1..=100u64 {
            h.record(v);
        }
        r.counter("n_total", "count").add(3);
        let mut input = r.snapshot(10_000).to_jsonl();
        r.counter("n_total", "count").add(2);
        input.push_str(&r.snapshot(2_010_000).to_jsonl());
        let report = render_series_report(&input).unwrap();
        assert!(report.contains("span 2000 ms"), "{report}");
        assert!(
            report.contains("n_total  first=3 last=5 delta=2"),
            "{report}"
        );
        assert!(report.contains("lat_us{ds=\"a\"}  count=100"), "{report}");
        assert!(report.contains("p50="), "{report}");
        assert!(render_series_report("").is_err());
        assert!(render_series_report("{\"e\":\"bogus\"}").is_err());
    }

    #[test]
    fn since_recovers_a_phase_distribution() {
        let r = enabled_registry();
        let h = r.histogram("ph", "phase");
        h.record(10);
        h.record(10);
        let first = h.snapshot();
        h.record(1 << 30);
        let second = h.snapshot();
        let delta = second.since(&first);
        assert_eq!(delta.count(), 1);
        assert!(delta.max() >= 1 << 30);
    }
}
