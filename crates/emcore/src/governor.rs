//! Workspace memory governor: `M` as a dynamic, contended resource.
//!
//! The governor sits next to the [`crate::MemoryTracker`] and manages the
//! *policy* layer of memory adaptivity: long-lived jobs (serve tenants,
//! concurrent sorts) take a [`Lease`] that names a guaranteed **floor** and
//! a fairness **weight**; the governor divides the workspace budget among
//! live leases by weighted fair share and answers admission-control
//! questions ("does a new tenant's floor still fit?"). The tracker stays
//! the *mechanism*: every word is still charged there, and a squeeze is
//! delivered by re-pointing both the tracker capacity and the governor
//! total (see `EmContext::set_mem_budget`).
//!
//! The reclaim protocol is cooperative and phase-boundary shaped: the
//! governor never interrupts a job. Jobs re-read their budget (fan-in,
//! splitter count `L`, buffer sizes) at the start of every pass/phase and
//! shrink to fit; allocations in between fail *typed*
//! ([`crate::EmError::MemoryExceeded`]) rather than panicking, and the
//! caller retries with a smaller shape or degrades.
//!
//! Fairness policy: with total budget `T`, floors `f_i` and weights `w_i`,
//! each lease is granted `f_i + (T - Σf)·w_i/Σw` (surplus split by weight).
//! When a squeeze drives `T` below `Σf` the floors themselves are kept —
//! admission control only gates *new* leases, so a tenant that was admitted
//! keeps its guarantee and the over-subscription is absorbed by the strict
//! tracker denying above-floor allocations.

use crate::error::{EmError, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

#[derive(Debug)]
struct LeaseState {
    name: String,
    floor: usize,
    weight: u32,
}

#[derive(Debug)]
struct GovInner {
    total: AtomicUsize,
    next_id: AtomicU64,
    /// Denied admissions (new lease floors that did not fit).
    denials: AtomicU64,
    /// Budget shrinks delivered via [`MemoryGovernor::set_total`].
    squeezes: AtomicU64,
    /// Budget grows delivered via [`MemoryGovernor::set_total`].
    restores: AtomicU64,
    table: Mutex<BTreeMap<u64, LeaseState>>,
}

/// Point-in-time view of one lease, with its computed fair-share grant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseInfo {
    /// The tenant/job name the lease was taken under.
    pub name: String,
    /// Guaranteed minimum words (held even when over-subscribed).
    pub floor: usize,
    /// Fairness weight for dividing the surplus above the floors.
    pub weight: u32,
    /// Current weighted-fair grant: `floor + surplus·weight/Σweights`.
    pub granted: usize,
}

/// Point-in-time view of the governor as a whole.
#[derive(Debug, Clone, Default)]
pub struct GovernorSnapshot {
    /// Current total budget in words.
    pub total: usize,
    /// Sum of all lease floors.
    pub floor_total: usize,
    /// Live leases with computed grants.
    pub leases: Vec<LeaseInfo>,
    /// Admissions denied so far.
    pub denials: u64,
    /// Budget shrinks so far.
    pub squeezes: u64,
    /// Budget grows so far.
    pub restores: u64,
}

/// Cheaply cloneable handle to the shared memory governor.
///
/// Thread-safe: the lease table sits behind one mutex (taken only on
/// lease/release/snapshot, never on the allocation fast path) and the
/// budget itself is a lock-free atomic.
#[derive(Debug, Clone)]
pub struct MemoryGovernor {
    inner: Arc<GovInner>,
}

impl MemoryGovernor {
    /// New governor over a budget of `total` words.
    pub fn new(total: usize) -> Self {
        Self {
            inner: Arc::new(GovInner {
                total: AtomicUsize::new(total),
                next_id: AtomicU64::new(1),
                denials: AtomicU64::new(0),
                squeezes: AtomicU64::new(0),
                restores: AtomicU64::new(0),
                table: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    fn table(&self) -> MutexGuard<'_, BTreeMap<u64, LeaseState>> {
        // A panic while holding the table lock cannot leave the map in a
        // torn state (every mutation is a single insert/remove), so poison
        // recovery is safe.
        self.inner.table.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Current total budget in words.
    pub fn total(&self) -> usize {
        self.inner.total.load(Ordering::Relaxed)
    }

    /// Re-point the budget (squeeze when shrinking, restore when growing).
    /// Grants are computed on read, so every live lease observes its new
    /// fair share immediately; floors of already-admitted leases are kept
    /// even if the new total no longer covers them.
    pub fn set_total(&self, words: usize) {
        let prev = self.inner.total.swap(words, Ordering::Relaxed);
        if words < prev {
            self.inner.squeezes.fetch_add(1, Ordering::Relaxed);
        } else if words > prev {
            self.inner.restores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Sum of the floors of all live leases.
    pub fn floor_total(&self) -> usize {
        self.table().values().map(|l| l.floor).sum()
    }

    /// Admission-controlled lease: grants a guaranteed `floor` (words) and
    /// a fairness `weight`, or fails with [`EmError::MemoryExceeded`] when
    /// the combined floors would exceed the current total. A `weight` of 0
    /// is admitted but never receives surplus above its floor.
    pub fn lease(&self, name: &str, floor: usize, weight: u32) -> Result<Lease> {
        let total = self.total();
        let mut table = self.table();
        let committed: usize = table.values().map(|l| l.floor).sum();
        if committed.saturating_add(floor) > total {
            drop(table);
            self.inner.denials.fetch_add(1, Ordering::Relaxed);
            return Err(EmError::MemoryExceeded {
                requested: committed.saturating_add(floor),
                capacity: total,
                context: format!("admission floor for lease {name:?}"),
            });
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        table.insert(
            id,
            LeaseState {
                name: name.to_string(),
                floor,
                weight,
            },
        );
        Ok(Lease {
            gov: self.clone(),
            id,
        })
    }

    /// The current weighted-fair grant for lease `id`, or `None` if the
    /// lease is gone.
    fn granted(&self, id: u64) -> Option<usize> {
        let total = self.total();
        let table = self.table();
        let floors: usize = table.values().map(|l| l.floor).sum();
        let weights: u64 = table.values().map(|l| u64::from(l.weight)).sum();
        let surplus = total.saturating_sub(floors);
        let l = table.get(&id)?;
        let share = (surplus as u64 * u64::from(l.weight))
            .checked_div(weights)
            .unwrap_or(0) as usize;
        Some(l.floor + share)
    }

    /// Full snapshot: total, floors, per-lease grants, event counters.
    pub fn snapshot(&self) -> GovernorSnapshot {
        let total = self.total();
        let table = self.table();
        let floors: usize = table.values().map(|l| l.floor).sum();
        let weights: u64 = table.values().map(|l| u64::from(l.weight)).sum();
        let surplus = total.saturating_sub(floors);
        let leases = table
            .values()
            .map(|l| {
                let share = (surplus as u64 * u64::from(l.weight))
                    .checked_div(weights)
                    .unwrap_or(0) as usize;
                LeaseInfo {
                    name: l.name.clone(),
                    floor: l.floor,
                    weight: l.weight,
                    granted: l.floor + share,
                }
            })
            .collect();
        GovernorSnapshot {
            total,
            floor_total: floors,
            leases,
            denials: self.inner.denials.load(Ordering::Relaxed),
            squeezes: self.inner.squeezes.load(Ordering::Relaxed),
            restores: self.inner.restores.load(Ordering::Relaxed),
        }
    }
}

/// RAII lease on a slice of the workspace budget: holding it guarantees the
/// floor stays admitted; dropping it returns the floor to the pool.
#[derive(Debug)]
pub struct Lease {
    gov: MemoryGovernor,
    id: u64,
}

impl Lease {
    /// Current weighted-fair grant in words (floor + surplus share). The
    /// value is recomputed from the live budget on every call, so a squeeze
    /// is visible at the holder's next phase boundary.
    pub fn granted(&self) -> usize {
        self.gov.granted(self.id).unwrap_or(0)
    }

    /// The guaranteed floor this lease was admitted with.
    pub fn floor(&self) -> usize {
        self.gov.table().get(&self.id).map_or(0, |l| l.floor)
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        self.gov.table().remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_control_denies_over_floor() {
        let g = MemoryGovernor::new(100);
        let _a = g.lease("a", 60, 1).unwrap();
        let e = g.lease("b", 50, 1).unwrap_err();
        assert!(matches!(e, EmError::MemoryExceeded { .. }));
        assert_eq!(g.snapshot().denials, 1);
        let _c = g.lease("c", 40, 1).unwrap();
        assert_eq!(g.floor_total(), 100);
    }

    #[test]
    fn weighted_fair_shares() {
        let g = MemoryGovernor::new(130);
        let a = g.lease("a", 10, 3).unwrap();
        let b = g.lease("b", 20, 1).unwrap();
        // surplus = 130 - 30 = 100, split 3:1.
        assert_eq!(a.granted(), 10 + 75);
        assert_eq!(b.granted(), 20 + 25);
    }

    #[test]
    fn squeeze_shrinks_grants_but_keeps_floors() {
        let g = MemoryGovernor::new(100);
        let a = g.lease("a", 30, 1).unwrap();
        let b = g.lease("b", 30, 1).unwrap();
        assert_eq!(a.granted(), 30 + 20);
        g.set_total(40); // below Σfloors = 60
        assert_eq!(a.granted(), 30, "floor kept when over-subscribed");
        assert_eq!(b.granted(), 30);
        let snap = g.snapshot();
        assert_eq!(snap.squeezes, 1);
        assert!(snap.floor_total > snap.total);
        g.set_total(100);
        assert_eq!(g.snapshot().restores, 1);
        assert_eq!(a.granted(), 50);
    }

    #[test]
    fn drop_returns_floor_to_pool() {
        let g = MemoryGovernor::new(100);
        let a = g.lease("a", 80, 1).unwrap();
        assert!(g.lease("b", 30, 1).is_err());
        drop(a);
        let b = g.lease("b", 30, 1).unwrap();
        assert_eq!(b.granted(), 100, "sole lease absorbs the whole surplus");
    }

    #[test]
    fn zero_weight_gets_floor_only() {
        let g = MemoryGovernor::new(100);
        let a = g.lease("a", 10, 0).unwrap();
        let b = g.lease("b", 10, 2).unwrap();
        assert_eq!(a.granted(), 10);
        assert_eq!(b.granted(), 10 + 80);
    }

    #[test]
    fn snapshot_lists_leases_in_admission_order() {
        let g = MemoryGovernor::new(64);
        let _a = g.lease("alpha", 8, 1).unwrap();
        let _b = g.lease("beta", 8, 1).unwrap();
        let names: Vec<_> = g.snapshot().leases.iter().map(|l| l.name.clone()).collect();
        assert_eq!(names, vec!["alpha", "beta"]);
    }
}
