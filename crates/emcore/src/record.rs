//! Record types stored in EM files.
//!
//! All algorithms are *comparison-based* on a record's key and respect the
//! indivisibility assumption: records move between disk and memory as whole
//! units. A record also knows its fixed-width byte encoding so the same code
//! runs unchanged on the real-file backend.

/// A fixed-size, plain-old-data record with an ordered key.
///
/// `WORDS` is the record's size in machine words for memory accounting —
/// the paper measures `M` and `B` in words, so a two-word record counts
/// double against buffers.
pub trait Record: Copy + Send + Sync + std::fmt::Debug + 'static {
    /// The ordered key the comparison-based algorithms operate on.
    type Key: Ord + Copy + std::fmt::Debug;

    /// Size of the record in words (memory accounting).
    const WORDS: usize;

    /// Size of the record's byte encoding (file backend).
    const BYTES: usize;

    /// Extract the key.
    fn key(&self) -> Self::Key;

    /// Serialise into exactly `Self::BYTES` bytes.
    fn write_bytes(&self, out: &mut [u8]);

    /// Deserialise from exactly `Self::BYTES` bytes.
    fn read_bytes(inp: &[u8]) -> Self;
}

macro_rules! impl_record_for_uint {
    ($t:ty, $bytes:expr) => {
        impl Record for $t {
            type Key = $t;
            const WORDS: usize = 1;
            const BYTES: usize = $bytes;

            #[inline]
            fn key(&self) -> $t {
                *self
            }

            #[inline]
            fn write_bytes(&self, out: &mut [u8]) {
                out[..$bytes].copy_from_slice(&self.to_le_bytes());
            }

            #[inline]
            fn read_bytes(inp: &[u8]) -> Self {
                let mut b = [0u8; $bytes];
                b.copy_from_slice(&inp[..$bytes]);
                <$t>::from_le_bytes(b)
            }
        }
    };
}

impl_record_for_uint!(u64, 8);
impl_record_for_uint!(u32, 4);
impl_record_for_uint!(i64, 8);

/// A key/value record: sorted by `key`, carries an opaque `value` payload.
///
/// Useful for demonstrating that the algorithms move *records*, not bare
/// keys (indivisibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeyValue {
    /// Sort key.
    pub key: u64,
    /// Payload carried along with the key.
    pub value: u64,
}

impl Record for KeyValue {
    type Key = u64;
    const WORDS: usize = 2;
    const BYTES: usize = 16;

    #[inline]
    fn key(&self) -> u64 {
        self.key
    }

    fn write_bytes(&self, out: &mut [u8]) {
        out[..8].copy_from_slice(&self.key.to_le_bytes());
        out[8..16].copy_from_slice(&self.value.to_le_bytes());
    }

    fn read_bytes(inp: &[u8]) -> Self {
        KeyValue {
            key: u64::read_bytes(&inp[..8]),
            value: u64::read_bytes(&inp[8..16]),
        }
    }
}

/// A record tagged with a group id, the element type of the *L-intermixed
/// selection* problem (paper §4.1): `e = (k_e, g_e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tagged<R: Record> {
    /// The underlying record (whose key drives comparisons).
    pub rec: R,
    /// Group id in `[0, L)`.
    pub group: u32,
}

impl<R: Record> Tagged<R> {
    /// Tag `rec` with `group`.
    pub fn new(rec: R, group: u32) -> Self {
        Self { rec, group }
    }
}

impl<R: Record> Record for Tagged<R> {
    type Key = R::Key;
    const WORDS: usize = R::WORDS + 1;
    const BYTES: usize = R::BYTES + 4;

    #[inline]
    fn key(&self) -> R::Key {
        self.rec.key()
    }

    fn write_bytes(&self, out: &mut [u8]) {
        self.rec.write_bytes(&mut out[..R::BYTES]);
        out[R::BYTES..R::BYTES + 4].copy_from_slice(&self.group.to_le_bytes());
    }

    fn read_bytes(inp: &[u8]) -> Self {
        let rec = R::read_bytes(&inp[..R::BYTES]);
        let mut g = [0u8; 4];
        g.copy_from_slice(&inp[R::BYTES..R::BYTES + 4]);
        Tagged {
            rec,
            group: u32::from_le_bytes(g),
        }
    }
}

/// A record augmented with its original position, which makes every key
/// distinct: ties are broken by position. Use this wrapper to run the
/// distribution-based algorithms on inputs with heavy key duplication.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Indexed<R: Record> {
    /// The underlying record.
    pub rec: R,
    /// Original 0-based position in the input.
    pub idx: u64,
}

impl<R: Record> Indexed<R> {
    /// Wrap `rec` at input position `idx`.
    pub fn new(rec: R, idx: u64) -> Self {
        Self { rec, idx }
    }
}

impl<R: Record> Record for Indexed<R> {
    type Key = (R::Key, u64);
    const WORDS: usize = R::WORDS + 1;
    const BYTES: usize = R::BYTES + 8;

    #[inline]
    fn key(&self) -> (R::Key, u64) {
        (self.rec.key(), self.idx)
    }

    fn write_bytes(&self, out: &mut [u8]) {
        self.rec.write_bytes(&mut out[..R::BYTES]);
        out[R::BYTES..R::BYTES + 8].copy_from_slice(&self.idx.to_le_bytes());
    }

    fn read_bytes(inp: &[u8]) -> Self {
        let rec = R::read_bytes(&inp[..R::BYTES]);
        let mut b = [0u8; 8];
        b.copy_from_slice(&inp[R::BYTES..R::BYTES + 8]);
        Indexed {
            rec,
            idx: u64::from_le_bytes(b),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<R: Record + PartialEq>(r: R) {
        let mut buf = vec![0u8; R::BYTES];
        r.write_bytes(&mut buf);
        assert_eq!(R::read_bytes(&buf), r);
    }

    #[test]
    fn u64_roundtrip() {
        roundtrip(0u64);
        roundtrip(u64::MAX);
        roundtrip(0xDEAD_BEEF_u64);
    }

    #[test]
    fn u32_and_i64_roundtrip() {
        roundtrip(42u32);
        roundtrip(-7i64);
        roundtrip(i64::MIN);
    }

    #[test]
    fn keyvalue_roundtrip_and_key() {
        let kv = KeyValue { key: 7, value: 99 };
        roundtrip(kv);
        assert_eq!(kv.key(), 7);
        assert_eq!(KeyValue::WORDS, 2);
        assert_eq!(KeyValue::BYTES, 16);
    }

    #[test]
    fn tagged_roundtrip() {
        let t = Tagged::new(123u64, 5);
        roundtrip(t);
        assert_eq!(t.key(), 123);
        assert_eq!(Tagged::<u64>::WORDS, 2);
        assert_eq!(Tagged::<u64>::BYTES, 12);
    }

    #[test]
    fn tagged_nested_record() {
        let t = Tagged::new(KeyValue { key: 1, value: 2 }, 3);
        roundtrip(t);
        assert_eq!(Tagged::<KeyValue>::WORDS, 3);
    }

    #[test]
    fn indexed_breaks_ties() {
        let a = Indexed::new(10u64, 0);
        let b = Indexed::new(10u64, 1);
        assert!(a.key() < b.key());
        roundtrip(a);
    }

    #[test]
    fn key_ordering_matches_value_ordering() {
        assert!(3u64.key() < 4u64.key());
        let kv1 = KeyValue { key: 1, value: 100 };
        let kv2 = KeyValue { key: 2, value: 0 };
        assert!(kv1.key() < kv2.key());
    }
}
