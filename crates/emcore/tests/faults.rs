//! Integration tests for the fault-injection layer from outside the crate:
//! error-type round trips, and faulty read/write round trips for every
//! record type on both backings.

use std::error::Error as _;

use emcore::{
    EmConfig, EmContext, EmError, FaultKind, FaultPlan, Indexed, IoOp, KeyValue, Record,
    RetryPolicy, Tagged,
};

fn mem_ctx() -> EmContext {
    EmContext::new_in_memory(EmConfig::tiny())
}

fn disk_ctx() -> EmContext {
    EmContext::new_on_disk_temp(EmConfig::tiny()).expect("tempdir")
}

// ---------------------------------------------------------------- errors

#[test]
fn corrupt_error_displays_block_and_file() {
    let e = EmError::Corrupt { block: 7, file: 3 };
    let s = format!("{e}");
    assert!(s.contains("block 7"), "{s}");
    assert!(s.contains("file 3"), "{s}");
    assert!(e.is_retryable(), "in-flight corruption is retry-curable");
    assert!(e.source().is_none());
}

#[test]
fn transient_error_displays_op_and_index() {
    let r = EmError::Transient {
        op: IoOp::Read,
        index: 42,
    };
    let w = EmError::Transient {
        op: IoOp::Write,
        index: 43,
    };
    assert!(format!("{r}").contains("read"));
    assert!(format!("{w}").contains("write"));
    assert!(format!("{r}").contains("42"));
    assert!(r.is_retryable() && w.is_retryable());
}

#[test]
fn crashed_error_is_not_retryable() {
    let e = EmError::Crashed;
    assert!(format!("{e}").contains("crash"));
    assert!(!e.is_retryable());
    assert!(e.source().is_none());
}

#[test]
fn io_error_keeps_source_and_config_does_not() {
    let io = EmError::from(std::io::Error::other("boom"));
    assert!(io.source().is_some());
    assert!(!io.is_retryable(), "real device errors are not retried");
    assert!(EmError::config("bad").source().is_none());
}

// ------------------------------------------- round trips under faults

/// Write `data` through a context with a transient-fault plan and a retry
/// policy, read it back, and check the bytes and the retry accounting.
fn faulty_round_trip<T: Record + PartialEq + std::fmt::Debug>(ctx: &EmContext, data: &[T]) {
    let plan = FaultPlan::new(0x00d1_5ea5e).transient_rate(0.08);
    ctx.install_fault_plan(plan.clone());
    ctx.set_retry_policy(RetryPolicy::retries(25));

    let f = emcore::EmFile::from_slice(ctx, data).expect("write with retries");
    let got = f.to_vec().expect("read with retries");
    assert_eq!(&got, data);

    let c = ctx.stats().snapshot();
    assert_eq!(
        c.retries,
        plan.injected().transient_total(),
        "every injected transient must be retried exactly once"
    );
    ctx.clear_fault_plan();
}

fn sample_u64(n: u64) -> Vec<u64> {
    (0..n)
        .map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .collect()
}

#[test]
fn u64_round_trip_under_faults_both_backends() {
    faulty_round_trip(&mem_ctx(), &sample_u64(300));
    faulty_round_trip(&disk_ctx(), &sample_u64(300));
}

#[test]
fn key_value_round_trip_under_faults_both_backends() {
    let data: Vec<KeyValue> = sample_u64(200)
        .into_iter()
        .map(|k| KeyValue { key: k, value: !k })
        .collect();
    faulty_round_trip(&mem_ctx(), &data);
    faulty_round_trip(&disk_ctx(), &data);
}

#[test]
fn tagged_round_trip_under_faults_both_backends() {
    let data: Vec<Tagged<u64>> = sample_u64(200)
        .into_iter()
        .enumerate()
        .map(|(i, k)| Tagged::new(k, (i % 7) as u32))
        .collect();
    faulty_round_trip(&mem_ctx(), &data);
    faulty_round_trip(&disk_ctx(), &data);
}

#[test]
fn indexed_round_trip_under_faults_both_backends() {
    let data: Vec<Indexed<u64>> = sample_u64(200)
        .into_iter()
        .enumerate()
        .map(|(i, k)| Indexed::new(k, i as u64))
        .collect();
    faulty_round_trip(&mem_ctx(), &data);
    faulty_round_trip(&disk_ctx(), &data);
}

// --------------------------------------------------- corruption on disk

#[test]
fn persistent_corruption_surfaces_as_corrupt_with_location() {
    let ctx = disk_ctx();
    let data = sample_u64(64); // 4 blocks at B = 16
    ctx.install_fault_plan(FaultPlan::new(1).fail_nth(2, FaultKind::CorruptWrite));
    let f = emcore::EmFile::from_slice(&ctx, &data).expect("silent corruption on write");
    match f.to_vec() {
        Err(EmError::Corrupt { block, file }) => {
            assert_eq!(file, f.id());
            assert!(block < f.num_blocks(), "reported block must be in range");
            assert!(ctx.stats().snapshot().corrupt_reads > 0);
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn crash_is_sticky_across_files_until_cleared() {
    let ctx = mem_ctx();
    let plan = FaultPlan::new(0).fatal_at(3);
    ctx.install_fault_plan(plan.clone());
    let data = sample_u64(100);
    let err = emcore::EmFile::from_slice(&ctx, &data).unwrap_err();
    assert!(matches!(err, EmError::Crashed));
    // Still crashed: a fresh file hits the same wall.
    assert!(matches!(
        emcore::EmFile::from_slice(&ctx, &data),
        Err(EmError::Crashed)
    ));
    plan.clear_crash();
    let f = emcore::EmFile::from_slice(&ctx, &data).expect("restart clears the crash");
    assert_eq!(f.to_vec().unwrap(), data);
}
