//! Precise K-partitioning and the §3 reduction.
//!
//! *Precise K-partitioning* is the multi-partition instance with
//! `σ_1 = … = σ_K = N/K`. The paper's Theorem 3 lower bound for
//! approximate K-partitioning is proved by an executable reduction: a
//! left-grounded approximate partitioner (partition sizes ≤ b) yields a
//! precise `(N/b)`-partitioner at `+O(N/B)` extra I/Os (§3, steps 1–2).
//! This module implements both the direct algorithm and the reduction, so
//! the lower-bound argument can be exercised empirically (experiment
//! EX-RED).

use emcore::{EmError, EmFile, Record, Result};
use emselect::{multi_partition_with, MpOptions, Partition};

use crate::partitioning::approx_partitioning_with;
use crate::spec::ProblemSpec;

/// Precise K-partitioning: `K` ordered partitions of exactly `N/K`
/// records each (requires `K | N`). Direct algorithm: multi-partition.
pub fn precise_partitioning<T: Record>(input: &EmFile<T>, k: u64) -> Result<Vec<Partition<T>>> {
    let n = input.len();
    if k == 0 || !n.is_multiple_of(k) {
        return Err(EmError::config(format!(
            "precise partitioning needs K | N; got N = {n}, K = {k}"
        )));
    }
    let sizes = vec![n / k; k as usize];
    multi_partition_with(input, &sizes, MpOptions::default())
}

/// The §3 reduction: solve precise `(N/b)`-partitioning *through* the
/// left-grounded approximate K-partitioning algorithm.
///
/// 1. Approximately partition `S` with `a = 0` and maximum size `b` into
///    `K = ⌈N/b⌉` parts.
/// 2. Sweep the parts in order, keeping a residue `R`; whenever
///    `|R| > b`, cut off the `b` smallest records of `R` as the next
///    precise partition (`O(|R|/B)` by selection + three-way split, and
///    `Σ|R|` telescopes to `O(N)`).
///
/// Requires `b | N`. Returns the `N/b` precise partitions.
pub fn precise_via_approx<T: Record>(input: &EmFile<T>, b: u64) -> Result<Vec<Partition<T>>> {
    precise_via_approx_with_step(input, b, b)
}

/// [`precise_via_approx`] with an explicit size bound for step 1.
///
/// The §3 reduction works for *any* approximate partitioning whose sizes
/// are ≤ b; `b_step ≤ b` is the bound handed to the approximate
/// algorithm. With `b_step = b` our left-grounded implementation happens
/// to return exact-`b` partitions and the sweep is free; smaller `b_step`
/// yields misaligned sizes and exercises the residue cuts (experiment
/// EX-RED uses this to measure the sweep's `O(N/B)` overhead).
pub fn precise_via_approx_with_step<T: Record>(
    input: &EmFile<T>,
    b: u64,
    b_step: u64,
) -> Result<Vec<Partition<T>>> {
    let n = input.len();
    if b == 0 || !n.is_multiple_of(b) {
        return Err(EmError::config(format!(
            "reduction needs b | N; got N = {n}, b = {b}"
        )));
    }
    if b_step == 0 || b_step > b {
        return Err(EmError::config(format!(
            "step bound b_step = {b_step} must be in [1, b = {b}]"
        )));
    }
    let ctx = input.ctx().clone();
    let k = n / b;
    // Step 1: left-grounded approximate partitioning with sizes ≤ b_step ≤ b.
    let spec = ProblemSpec::new(n, n.div_ceil(b_step).max(1), 0, b_step)?;
    let approx = approx_partitioning_with(input, &spec, MpOptions::default())?;

    // Step 2: the residue sweep. The residue R is a Partition (segment
    // list): appending P_i to R is O(1); only the |R| > b cuts move data.
    let _phase = ctx.stats().phase_guard("reduction-sweep");
    let mut out: Vec<Partition<T>> = Vec::with_capacity(k as usize);
    debug_assert!(k >= 1);
    let mut residue = Partition::<T>::empty();
    for part in approx {
        // R ← R ∥ P_i (adopt segments, no I/O)
        residue = concat_partitions(residue, part);
        while residue.len() > b {
            // Cut the b smallest out of the residue directly over its
            // segments (no flattening copy).
            let (head, rest, _) = emselect::split_at_rank_segs(
                &ctx,
                residue.segments(),
                b,
                emselect::SplitterStrategy::Deterministic,
            )?;
            out.push(head);
            residue = rest;
        }
        if residue.len() == b {
            out.push(std::mem::replace(&mut residue, Partition::empty()));
        }
    }
    debug_assert!(
        residue.is_empty(),
        "leftover residue of {} records",
        residue.len()
    );
    Ok(out)
}

/// Concatenate two partitions by segment adoption (no I/O).
fn concat_partitions<T: Record>(a: Partition<T>, b: Partition<T>) -> Partition<T> {
    let mut segs = a.into_segments();
    segs.extend(b.into_segments());
    Partition::from_segments(segs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn strict_ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn assert_precise(parts: &[Partition<u64>], n: u64, k: u64) {
        assert_eq!(parts.len(), k as usize);
        let mut prev_max: Option<u64> = None;
        for p in parts {
            assert_eq!(p.len(), n / k);
            let v = p.to_vec().unwrap();
            let mn = *v.iter().min().unwrap();
            let mx = *v.iter().max().unwrap();
            if let Some(pm) = prev_max {
                assert!(mn >= pm);
            }
            prev_max = Some(mx);
        }
    }

    #[test]
    fn direct_precise_partitioning() {
        let c = strict_ctx();
        let n = 4000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 40)))
            .unwrap();
        let parts = precise_partitioning(&f, 8).unwrap();
        assert_precise(&parts, n, 8);
    }

    #[test]
    fn precise_rejects_non_divisor() {
        let c = strict_ctx();
        let f = EmFile::from_slice(&c, &shuffled(10, 41)).unwrap();
        assert!(precise_partitioning(&f, 3).is_err());
        assert!(precise_partitioning(&f, 0).is_err());
    }

    #[test]
    fn reduction_matches_direct() {
        let c = strict_ctx();
        let n = 4000u64;
        let b = 500u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 42)))
            .unwrap();
        let via = precise_via_approx(&f, b).unwrap();
        assert_precise(&via, n, n / b);
        // Contents must equal the direct algorithm's partitions as sets.
        let direct = precise_partitioning(&f, n / b).unwrap();
        for (x, y) in via.iter().zip(&direct) {
            let mut xv = x.to_vec().unwrap();
            let mut yv = y.to_vec().unwrap();
            xv.sort_unstable();
            yv.sort_unstable();
            assert_eq!(xv, yv);
        }
    }

    #[test]
    fn reduction_extra_cost_is_linear() {
        let c = EmContext::new_in_memory(EmConfig::medium());
        let n = 100_000u64;
        let b = 5_000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 43)))
            .unwrap();
        let before = c.stats().snapshot();
        let _ = precise_via_approx(&f, b).unwrap();
        let total = c.stats().snapshot().since(&before).total_ios();
        // The reduction should cost a bounded number of scans.
        let scan = n.div_ceil(64);
        assert!(
            total <= 40 * scan,
            "reduction took {total} I/Os = {:.1} scans",
            total as f64 / scan as f64
        );
        // And the sweep itself (phase) is linear-ish:
        let phases = c.stats().phase_totals();
        let sweep = phases
            .iter()
            .find(|(n, _)| n == "reduction-sweep")
            .map(|(_, c)| c.total_ios())
            .unwrap();
        assert!(
            sweep <= 8 * scan,
            "sweep took {sweep} I/Os = {:.1} scans",
            sweep as f64 / scan as f64
        );
    }

    #[test]
    fn reduction_with_duplicates() {
        let c = strict_ctx();
        let n = 2000u64;
        let data: Vec<u64> = (0..n).map(|i| i % 7).collect();
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let parts = precise_via_approx(&f, 200).unwrap();
        assert_eq!(parts.len(), 10);
        let mut prev_max: Option<u64> = None;
        for p in &parts {
            assert_eq!(p.len(), 200);
            let v = p.to_vec().unwrap();
            if let Some(pm) = prev_max {
                assert!(*v.iter().min().unwrap() >= pm);
            }
            prev_max = Some(*v.iter().max().unwrap());
        }
    }
}
