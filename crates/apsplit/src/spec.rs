//! Problem specifications for approximate K-splitters / K-partitioning.

use emcore::{EmError, Result};

/// Which of the paper's parameter regimes a spec falls in (§1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Groundedness {
    /// `a == 0`: only the upper size bound binds.
    LeftGrounded,
    /// `b >= N`: only the lower size bound binds.
    RightGrounded,
    /// `0 < a` and `b < N`: both bounds bind.
    TwoSided,
}

/// An instance of the approximate K-splitters / K-partitioning problem:
/// divide `n` elements into `k` ordered partitions, every one of size in
/// `[a, b]`.
///
/// Feasibility (enforced at construction): `1 ≤ k ≤ n`, `a ≤ b`, and
/// `a·k ≤ n ≤ b·k` — the integer form of the paper's `a ≤ N/K ≤ b`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemSpec {
    /// Input size `N`.
    pub n: u64,
    /// Number of partitions `K`.
    pub k: u64,
    /// Minimum partition size `a`.
    pub a: u64,
    /// Maximum partition size `b`.
    pub b: u64,
}

impl ProblemSpec {
    /// Start building a spec for `n` records in `k` partitions. Size
    /// bounds default to the unconstrained `[0, n]`; set them with
    /// [`ProblemSpecBuilder::min_size`] / [`ProblemSpecBuilder::max_size`].
    /// [`ProblemSpecBuilder::build`] applies the same validation as
    /// [`ProblemSpec::new`], with the four parameters named instead of
    /// positional:
    ///
    /// ```
    /// use apsplit::ProblemSpec;
    /// let spec = ProblemSpec::builder(100_000, 16)
    ///     .min_size(4)
    ///     .max_size(100_000)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(spec, ProblemSpec::new(100_000, 16, 4, 100_000).unwrap());
    /// ```
    pub fn builder(n: u64, k: u64) -> ProblemSpecBuilder {
        ProblemSpecBuilder { n, k, a: 0, b: n }
    }

    /// Validate and construct a spec.
    pub fn new(n: u64, k: u64, a: u64, b: u64) -> Result<Self> {
        if k == 0 {
            return Err(EmError::config("K must be at least 1"));
        }
        if k > n {
            return Err(EmError::config(format!("K = {k} exceeds N = {n}")));
        }
        if a > b {
            return Err(EmError::config(format!("a = {a} > b = {b}")));
        }
        if a.checked_mul(k).is_none_or(|ak| ak > n) {
            return Err(EmError::config(format!(
                "infeasible: a·K = {a}·{k} > N = {n}"
            )));
        }
        if b.checked_mul(k).is_some_and(|bk| bk < n) {
            return Err(EmError::config(format!(
                "infeasible: b·K = {b}·{k} < N = {n}"
            )));
        }
        Ok(Self { n, k, a, b })
    }

    /// The tightest always-feasible balanced spec: `a = ⌊N/K⌋`,
    /// `b = ⌈N/K⌉`. For any `1 ≤ k ≤ n` this passes [`ProblemSpec::new`]'s
    /// feasibility check (`⌊n/k⌋·k ≤ n ≤ ⌈n/k⌉·k`) and always satisfies
    /// [`ProblemSpec::quantile_suffices`] (`2·⌊n/k⌋·k ≥ n` whenever
    /// `n ≥ k`), so partitioning resolves to exact `1/K`-quantile cuts —
    /// the spec a shard builder wants: near-even shards with no slack to
    /// negotiate.
    pub fn near_even(n: u64, k: u64) -> Result<Self> {
        if k == 0 {
            return Err(EmError::config("K must be at least 1"));
        }
        Self::new(n, k, n / k, n.div_ceil(k))
    }

    /// A perfectly balanced spec: `a = b = N/K` (requires `K | N`).
    pub fn exact(n: u64, k: u64) -> Result<Self> {
        if k == 0 || !n.is_multiple_of(k) {
            return Err(EmError::config(format!(
                "exact spec needs K | N; got N = {n}, K = {k}"
            )));
        }
        Self::new(n, k, n / k, n / k)
    }

    /// Which regime this spec is in.
    pub fn groundedness(&self) -> Groundedness {
        if self.a == 0 {
            Groundedness::LeftGrounded
        } else if self.b >= self.n {
            Groundedness::RightGrounded
        } else {
            Groundedness::TwoSided
        }
    }

    /// The paper's two-sided "easy case" test (§5.1): `a ≥ N/2K` or
    /// `b ≤ 2N/K`, where a plain `1/K`-quantile already satisfies `[a, b]`.
    pub fn quantile_suffices(&self) -> bool {
        2 * self.a * self.k >= self.n || self.b * self.k <= 2 * self.n
    }

    /// The two-sided split point `K' = ⌊(bK − N)/(b − a)⌋` (§5.1).
    /// Only meaningful when `!quantile_suffices()` (which implies a < b).
    pub fn k_prime(&self) -> u64 {
        debug_assert!(self.b > self.a);
        (self.b * self.k - self.n) / (self.b - self.a)
    }

    /// Ranks of the `1/K`-quantile of `n` records: `⌊i·n/k⌋` for
    /// `i = 1..k`, whose consecutive differences are `⌊n/k⌋` or `⌈n/k⌉` —
    /// always within `[a, b]` for a feasible spec.
    pub fn quantile_ranks(&self) -> Vec<u64> {
        (1..self.k).map(|i| (i * self.n) / self.k).collect()
    }
}

/// Named-parameter construction of a [`ProblemSpec`]; see
/// [`ProblemSpec::builder`].
#[derive(Debug, Clone, Copy)]
pub struct ProblemSpecBuilder {
    n: u64,
    k: u64,
    a: u64,
    b: u64,
}

impl ProblemSpecBuilder {
    /// Minimum partition size `a` (default `0`: unconstrained below).
    pub fn min_size(mut self, a: u64) -> Self {
        self.a = a;
        self
    }

    /// Maximum partition size `b` (default `n`: unconstrained above).
    pub fn max_size(mut self, b: u64) -> Self {
        self.b = b;
        self
    }

    /// Validate and construct the spec (same feasibility rules as
    /// [`ProblemSpec::new`]).
    pub fn build(self) -> Result<ProblemSpec> {
        ProblemSpec::new(self.n, self.k, self.a, self.b)
    }
}

impl std::fmt::Display for ProblemSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "N={} K={} [a={}, b={}] ({:?})",
            self.n,
            self.k,
            self.a,
            self.b,
            self.groundedness()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn feasible_specs() {
        assert!(ProblemSpec::new(100, 4, 20, 30).is_ok());
        assert!(ProblemSpec::new(100, 4, 25, 25).is_ok());
        assert!(ProblemSpec::new(100, 4, 0, 100).is_ok());
    }

    #[test]
    fn infeasible_specs() {
        assert!(ProblemSpec::new(100, 4, 26, 30).is_err()); // aK > N
        assert!(ProblemSpec::new(100, 4, 10, 24).is_err()); // bK < N
        assert!(ProblemSpec::new(100, 4, 30, 20).is_err()); // a > b
        assert!(ProblemSpec::new(100, 0, 0, 100).is_err());
        assert!(ProblemSpec::new(3, 4, 0, 3).is_err()); // K > N
    }

    #[test]
    fn groundedness_classification() {
        assert_eq!(
            ProblemSpec::new(100, 4, 0, 50).unwrap().groundedness(),
            Groundedness::LeftGrounded
        );
        assert_eq!(
            ProblemSpec::new(100, 4, 5, 100).unwrap().groundedness(),
            Groundedness::RightGrounded
        );
        assert_eq!(
            ProblemSpec::new(100, 4, 5, 50).unwrap().groundedness(),
            Groundedness::TwoSided
        );
        // b > N also counts as right-grounded
        assert_eq!(
            ProblemSpec::new(100, 4, 5, 1000).unwrap().groundedness(),
            Groundedness::RightGrounded
        );
    }

    #[test]
    fn quantile_suffices_cases() {
        // a = 20 ≥ 100/8 = 12.5 → quantile suffices
        assert!(ProblemSpec::new(100, 4, 20, 50)
            .unwrap()
            .quantile_suffices());
        // b = 30 ≤ 2·100/4 = 50 → quantile suffices
        assert!(ProblemSpec::new(100, 4, 1, 30).unwrap().quantile_suffices());
        // a = 1 < 12.5, b = 99 > 50 → hard case
        assert!(!ProblemSpec::new(100, 4, 1, 99).unwrap().quantile_suffices());
    }

    #[test]
    fn k_prime_in_range() {
        let s = ProblemSpec::new(1000, 10, 2, 900).unwrap();
        assert!(!s.quantile_suffices());
        let kp = s.k_prime();
        assert!(kp >= 1 && kp < s.k, "K' = {kp}");
    }

    #[test]
    fn quantile_ranks_diffs_bounded() {
        let s = ProblemSpec::new(103, 4, 25, 26).unwrap();
        let ranks = s.quantile_ranks();
        assert_eq!(ranks.len(), 3);
        let mut prev = 0;
        for &r in ranks.iter().chain(std::iter::once(&103)) {
            let d = r - prev;
            assert!((25..=26).contains(&d), "diff {d}");
            prev = r;
        }
    }

    #[test]
    fn builder_matches_positional_and_defaults_are_unconstrained() {
        assert_eq!(
            ProblemSpec::builder(100, 4)
                .min_size(20)
                .max_size(30)
                .build()
                .unwrap(),
            ProblemSpec::new(100, 4, 20, 30).unwrap()
        );
        // Defaults: a = 0, b = n (left-grounded, always feasible for k ≤ n).
        let s = ProblemSpec::builder(100, 4).build().unwrap();
        assert_eq!(s, ProblemSpec::new(100, 4, 0, 100).unwrap());
        // Validation still applies.
        assert!(ProblemSpec::builder(100, 4).min_size(26).build().is_err());
    }

    #[test]
    fn near_even_always_feasible_and_quantile_sufficient() {
        for n in 1..200u64 {
            for k in 1..=n.min(32) {
                let s = ProblemSpec::near_even(n, k).unwrap_or_else(|e| {
                    panic!("near_even({n}, {k}) must be feasible: {e}");
                });
                assert_eq!((s.a, s.b), (n / k, n.div_ceil(k)));
                assert!(s.quantile_suffices(), "near_even({n}, {k})");
                // Quantile cut differences all land in [a, b].
                let mut prev = 0;
                for &r in s.quantile_ranks().iter().chain(std::iter::once(&n)) {
                    let d = r - prev;
                    assert!((s.a..=s.b).contains(&d), "near_even({n}, {k}): diff {d}");
                    prev = r;
                }
            }
        }
        assert!(ProblemSpec::near_even(100, 0).is_err());
        assert!(ProblemSpec::near_even(3, 8).is_err(), "K > N stays typed");
    }

    #[test]
    fn exact_requires_divisibility() {
        assert!(ProblemSpec::exact(100, 4).is_ok());
        assert!(ProblemSpec::exact(100, 3).is_err());
    }

    #[test]
    fn display_contains_fields() {
        let s = ProblemSpec::new(100, 4, 5, 50).unwrap();
        let d = format!("{s}");
        assert!(d.contains("N=100") && d.contains("TwoSided"));
    }
}
