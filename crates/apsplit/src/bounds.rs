//! Closed-form I/O bounds from the paper's Table 1.
//!
//! Every benchmark prints a "predicted" column computed from these
//! formulas next to the measured I/O counts; the reproduction criterion is
//! that measured/predicted stays within a constant across each sweep (same
//! *shape*), and that the orderings/crossovers between algorithms match.
//!
//! Conventions follow the paper: `lg_x y = max(1, log_x y)`; all values in
//! block I/Os.

use emcore::EmConfig;

/// `lg_{M/B}(x)` with the paper's clamp at 1.
pub fn lg_mb(cfg: EmConfig, x: f64) -> f64 {
    cfg.lg_mb(x)
}

/// Table 1, K-splitters / right-grounded (Theorems 1 & 5):
/// `Θ((1 + aK/B)·lg_{M/B}(K/B))`.
pub fn splitters_right(cfg: EmConfig, _n: u64, k: u64, a: u64) -> f64 {
    let b = cfg.block_size() as f64;
    (1.0 + (a * k) as f64 / b) * lg_mb(cfg, k as f64 / b)
}

/// Table 1, K-splitters / left-grounded (Theorems 2 & 5):
/// `Θ((N/B)·lg_{M/B}(N/(bB)))`.
pub fn splitters_left(cfg: EmConfig, n: u64, _k: u64, b_param: u64) -> f64 {
    let b = cfg.block_size() as f64;
    (n as f64 / b) * lg_mb(cfg, n as f64 / (b_param as f64 * b))
}

/// Table 1, K-splitters / two-sided:
/// `Θ((1 + aK/B)·lg_{M/B}(K/B) + (N/B)·lg_{M/B}(N/(bB)))`.
pub fn splitters_two_sided(cfg: EmConfig, n: u64, k: u64, a: u64, b_param: u64) -> f64 {
    splitters_right(cfg, n, k, a) + splitters_left(cfg, n, k, b_param)
}

/// Table 1, K-partitioning / right-grounded upper bound (Theorem 6):
/// `O(N/B + (aK/B)·lg_{M/B} min{K, aK/B})`.
pub fn partitioning_right(cfg: EmConfig, n: u64, k: u64, a: u64) -> f64 {
    let b = cfg.block_size() as f64;
    let ak_b = (a * k) as f64 / b;
    n as f64 / b + ak_b * lg_mb(cfg, (k as f64).min(ak_b))
}

/// Table 1, K-partitioning / left-grounded (Theorems 3 & 6):
/// `Θ((N/B)·lg_{M/B} min{N/b, N/B})`.
pub fn partitioning_left(cfg: EmConfig, n: u64, _k: u64, b_param: u64) -> f64 {
    let b = cfg.block_size() as f64;
    let nf = n as f64;
    (nf / b) * lg_mb(cfg, (nf / b_param as f64).min(nf / b))
}

/// Table 1, K-partitioning / two-sided upper bound:
/// `O((aK/B)·lg_{M/B} min{K, aK/B} + (N/B)·lg_{M/B} min{N/b, N/B})`.
pub fn partitioning_two_sided(cfg: EmConfig, n: u64, k: u64, a: u64, b_param: u64) -> f64 {
    let b = cfg.block_size() as f64;
    let ak_b = (a * k) as f64 / b;
    ak_b * lg_mb(cfg, (k as f64).min(ak_b)) + partitioning_left(cfg, n, k, b_param)
}

/// Theorem 4 (multi-selection upper bound): `O((N/B)·lg_{M/B}(K/B))`.
pub fn multi_select_bound(cfg: EmConfig, n: u64, k: u64) -> f64 {
    let b = cfg.block_size() as f64;
    (n as f64 / b) * lg_mb(cfg, k as f64 / b)
}

/// Multi-partition bound (§1.2 / Lemma 5): `Θ((N/B)·lg_{M/B} K)`.
pub fn multi_partition_bound(cfg: EmConfig, n: u64, k: u64) -> f64 {
    (n as f64 / cfg.block_size() as f64) * lg_mb(cfg, k as f64)
}

/// The sorting bound: `Θ((N/B)·lg_{M/B}(N/B))`.
pub fn sort_bound(cfg: EmConfig, n: u64) -> f64 {
    let b = cfg.block_size() as f64;
    (n as f64 / b) * lg_mb(cfg, n as f64 / b)
}

/// Lower bound of Theorem 1 (right-grounded splitters), as stated:
/// `Ω((1 + aK/B)·lg_{M/B}(K/B))`. Identical in form to the upper bound.
pub fn lb_splitters_right(cfg: EmConfig, n: u64, k: u64, a: u64) -> f64 {
    splitters_right(cfg, n, k, a)
}

/// Lower bound of Theorem 2 (left-grounded splitters).
pub fn lb_splitters_left(cfg: EmConfig, n: u64, k: u64, b_param: u64) -> f64 {
    splitters_left(cfg, n, k, b_param)
}

/// Lower bound of Theorem 3 (K-partitioning):
/// `Ω((N/B)·lg_{M/B} min{N/b, N/B})`, plus the trivial `Ω(N/B)` scan for
/// the right-grounded case.
pub fn lb_partitioning(cfg: EmConfig, n: u64, k: u64, b_param: u64) -> f64 {
    partitioning_left(cfg, n, k, b_param).max(cfg.scan_bound(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> EmConfig {
        EmConfig::medium() // M=4096, B=64, M/B=64
    }

    #[test]
    fn right_splitters_sublinear_for_small_a() {
        let c = cfg();
        let n = 10_000_000u64;
        // a small → bound far below one scan
        let bound = splitters_right(c, n, 64, 2);
        assert!(bound < c.scan_bound(n) / 100.0, "bound = {bound}");
        // a = N/K → bound at least the scan
        let big = splitters_right(c, n, 64, n / 64);
        assert!(big >= c.scan_bound(n) * 0.99);
    }

    #[test]
    fn left_splitters_decreases_in_b() {
        let c = cfg();
        let n = 10_000_000u64;
        let tight = splitters_left(c, n, 64, n / 64);
        let loose = splitters_left(c, n, 64, n / 2);
        assert!(tight >= loose);
        // For b = N/2 the bound is one clamped scan.
        assert!((loose - c.scan_bound(n)).abs() < 1e-6);
    }

    #[test]
    fn separation_multi_select_vs_partition() {
        // The §1.3 phenomenon: for small K multi-select is strictly
        // cheaper; for large K the bounds merge.
        let c = cfg();
        let n = 10_000_000u64;
        // K in (M/B, B·M/B]: lg_{M/B}(K/B) clamps to 1 while lg_{M/B} K > 1.
        let small_k = 4096u64;
        assert!(multi_select_bound(c, n, small_k) < multi_partition_bound(c, n, small_k));
        let large_k = 1 << 20;
        let ms = multi_select_bound(c, n, large_k);
        let mp = multi_partition_bound(c, n, large_k);
        assert!(ms / mp > 0.5, "at large K the bounds agree up to constants");
    }

    #[test]
    fn sort_dominates_everything() {
        let c = cfg();
        let n = 10_000_000u64;
        let k = 256u64;
        let sort = sort_bound(c, n);
        assert!(multi_select_bound(c, n, k) <= sort);
        assert!(partitioning_left(c, n, k, n / k) <= sort + 1e-9);
        assert!(splitters_two_sided(c, n, k, 2, n / 2) <= sort);
    }

    #[test]
    fn partitioning_left_saturates_at_sort() {
        let c = cfg();
        let n = 10_000_000u64;
        // b = 1 → min{N/b, N/B} = N/B → the sort bound
        let x = partitioning_left(c, n, n, 1);
        assert!((x - sort_bound(c, n)).abs() < 1e-6);
    }

    #[test]
    fn lb_never_exceeds_ub_forms() {
        let c = cfg();
        let n = 1_000_000u64;
        for &(k, a, b) in &[
            (16u64, 2u64, 500_000u64),
            (1024, 100, 10_000),
            (4, 1, 999_999),
        ] {
            assert!(lb_splitters_right(c, n, k, a) <= splitters_two_sided(c, n, k, a, b) + 1e-9);
            assert!(
                lb_partitioning(c, n, k, b)
                    <= partitioning_two_sided(c, n, k, a, b).max(c.scan_bound(n)) + 1e-9
            );
        }
    }
}
