//! # apsplit — approximate K-splitters and K-partitioning in external memory
//!
//! The core library of this workspace: a faithful implementation of the
//! algorithmic results of *"Finding Approximate Partitions and Splitters in
//! External Memory"* (Hu, Tao, Yang, Zhou; SPAA 2014).
//!
//! Given a set `S` of `N` records on disk and a feasible [`ProblemSpec`]
//! `(N, K, a, b)`:
//!
//! * [`approx_splitters`] returns `K − 1` elements of `S` whose induced
//!   partitions all have sizes in `[a, b]` (Theorem 5) — *sublinear* in `N`
//!   for the right-grounded case with small `a`;
//! * [`approx_partitioning`] physically splits `S` into `K` ordered
//!   partition files with sizes in `[a, b]` (Theorem 6);
//! * [`precise_partitioning`] / [`precise_via_approx`] realise the exact
//!   variant and the paper's §3 lower-bound reduction;
//! * [`sort_based_splitters`] / [`sort_based_partitioning`] /
//!   [`sort_based_multi_select`] are the §1.2 sorting baselines;
//! * [`bounds`] holds the closed-form Table-1 formulas the experiments
//!   compare measurements against;
//! * [`verify_splitters`] / [`verify_partitioning`] /
//!   [`verify_multiselect`] are correctness oracles;
//! * [`equi_depth_histogram`] / [`balanced_loads`] package the paper's two
//!   §1 motivations as applications.
//!
//! ```
//! use emcore::{EmConfig, EmContext, EmFile};
//! use apsplit::{approx_splitters, verify_splitters, ProblemSpec};
//!
//! let ctx = EmContext::new_in_memory(EmConfig::medium());
//! let data: Vec<u64> = (0..100_000).rev().collect();
//! let file = EmFile::from_slice(&ctx, &data).unwrap();
//!
//! // Partition sizes may range in [4, N]: a right-grounded instance,
//! // solvable in far fewer I/Os than even one scan of the input.
//! let spec = ProblemSpec::new(100_000, 16, 4, 100_000).unwrap();
//! let splitters = approx_splitters(&file, &spec).unwrap();
//! assert_eq!(splitters.len(), 15);
//! let report = verify_splitters(&file, &splitters, &spec).unwrap();
//! assert!(report.ok);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod adversary;
mod apps;
mod baseline;
pub mod bounds;
mod partitioning;
mod precise;
mod recover;
mod spec;
mod splitters;
mod verify;

pub use adversary::{cheating_right_grounded, complete_left_grounded, complete_right_grounded};
pub use apps::{balanced_loads, bottom_k, equi_depth_histogram, median, top_k, EquiDepthHistogram};
pub use baseline::{sort_based_multi_select, sort_based_partitioning, sort_based_splitters};
pub use partitioning::{
    approx_partitioning, approx_partitioning_with, PartitionOptions, Partitioning,
};
pub use precise::{precise_partitioning, precise_via_approx, precise_via_approx_with_step};
#[allow(deprecated)]
pub use recover::resume_approx_partitioning;
pub use recover::{
    approx_partitioning_recoverable, PartitionJob, PartitionManifest, PARTITION_JOURNAL,
};
pub use spec::{Groundedness, ProblemSpec, ProblemSpecBuilder};
pub use splitters::{approx_splitters, approx_splitters_with, SplitOptions};
pub use verify::{
    verify_multiselect, verify_partitioning, verify_splitters, PartitionReport, SplitterReport,
};
