//! Output verifiers: the correctness oracles used by tests, examples and
//! the benchmark harness.
//!
//! These scans are *not* part of the algorithms under measurement, and they
//! must see the *true* data even when a [`emcore::FaultPlan`] is active —
//! a verifier that itself suffers injected faults cannot adjudicate
//! anything. Each verifier therefore runs as a context *oracle*
//! ([`emcore::EmContext::oracle`]): I/O accounting is paused and fault
//! injection is suspended for the duration of the scan (an explicit
//! `ctx.stats().paused(..)` at the call site remains harmless — pauses
//! nest). They hold the `K`-sized splitter array / size list in host memory
//! (they are checking tools, not EM algorithms).

use emcore::{EmFile, Record, Result};
use emselect::Partition;

use crate::spec::ProblemSpec;

/// Outcome of [`verify_splitters`].
#[derive(Debug, Clone)]
pub struct SplitterReport {
    /// Whether every induced partition size is within `[a, b]`.
    pub ok: bool,
    /// The `K` induced partition sizes `|S ∩ (s_{i-1}, s_i]|`.
    pub sizes: Vec<u64>,
    /// Indices of partitions whose size is out of range.
    pub violations: Vec<usize>,
}

/// Count the partitions induced by `splitters` on `input` and check them
/// against `spec`. `splitters` must be ascending by key (as returned by
/// [`crate::approx_splitters`]).
pub fn verify_splitters<T: Record>(
    input: &EmFile<T>,
    splitters: &[T],
    spec: &ProblemSpec,
) -> Result<SplitterReport> {
    debug_assert!(splitters.windows(2).all(|w| w[0].key() <= w[1].key()));
    let mut sizes = vec![0u64; splitters.len() + 1];
    input.ctx().oracle(|| -> Result<()> {
        let mut r = input.reader()?;
        while let Some(x) = r.next()? {
            let j = splitters.partition_point(|s| s.key() < x.key());
            sizes[j] += 1;
        }
        Ok(())
    })?;
    let violations: Vec<usize> = sizes
        .iter()
        .enumerate()
        .filter(|&(_, &s)| s < spec.a || s > spec.b)
        .map(|(i, _)| i)
        .collect();
    Ok(SplitterReport {
        ok: violations.is_empty() && sizes.len() == spec.k as usize,
        sizes,
        violations,
    })
}

/// Outcome of [`verify_partitioning`].
#[derive(Debug, Clone)]
pub struct PartitionReport {
    /// All checks passed.
    pub ok: bool,
    /// Partition sizes.
    pub sizes: Vec<u64>,
    /// Partitions with size outside `[a, b]`.
    pub size_violations: Vec<usize>,
    /// Adjacent pairs `(i, i+1)` where ordering is violated
    /// (`max(P_i) > min(P_{i+1})`).
    pub order_violations: Vec<usize>,
    /// Whether the sizes sum to `N`.
    pub total_matches: bool,
}

/// Check an approximate-K-partitioning output: `K` partitions, sizes in
/// `[a, b]` summing to `N`, and every element of `P_i` ≤ every element of
/// `P_{i+1}` (the `≤` form admits duplicate keys straddling a boundary).
pub fn verify_partitioning<T: Record>(
    parts: &[Partition<T>],
    spec: &ProblemSpec,
) -> Result<PartitionReport> {
    let mut sizes = Vec::with_capacity(parts.len());
    let mut size_violations = Vec::new();
    let mut order_violations = Vec::new();
    let mut prev_max: Option<T::Key> = None;
    let mut prev_idx = 0usize;
    // The context comes from any stored segment (the scan below touches the
    // same backing); an all-empty partitioning scans nothing, so it needs
    // no oracle.
    let ctx = parts
        .iter()
        .flat_map(|p| p.segments())
        .map(|s| s.ctx().clone())
        .next();
    let mut scan = |sizes: &mut Vec<u64>,
                    size_violations: &mut Vec<usize>,
                    order_violations: &mut Vec<usize>|
     -> Result<()> {
        for (i, p) in parts.iter().enumerate() {
            let len = p.len();
            sizes.push(len);
            if len < spec.a || len > spec.b {
                size_violations.push(i);
            }
            if len == 0 {
                continue;
            }
            let mut mn: Option<T::Key> = None;
            let mut mx: Option<T::Key> = None;
            p.for_each(|x| {
                let k = x.key();
                if mn.is_none_or(|m| k < m) {
                    mn = Some(k);
                }
                if mx.is_none_or(|m| k > m) {
                    mx = Some(k);
                }
                Ok(())
            })?;
            if let (Some(pm), Some(m)) = (prev_max, mn) {
                if m < pm {
                    order_violations.push(prev_idx);
                }
            }
            // A nonempty partition always yields a max in the scan above.
            prev_max = mx.or(prev_max);
            prev_idx = i;
        }
        Ok(())
    };
    match &ctx {
        Some(c) => c.oracle(|| scan(&mut sizes, &mut size_violations, &mut order_violations))?,
        None => scan(&mut sizes, &mut size_violations, &mut order_violations)?,
    }
    let total: u64 = sizes.iter().sum();
    let total_matches = total == spec.n;
    Ok(PartitionReport {
        ok: parts.len() == spec.k as usize
            && size_violations.is_empty()
            && order_violations.is_empty()
            && total_matches,
        sizes,
        size_violations,
        order_violations,
        total_matches,
    })
}

/// Check a multi-selection answer: for each `(rank, answer)` pair, the
/// number of records with key strictly below the answer's must be `< rank`
/// and the count at-or-below must be `≥ rank`. One scan for all pairs.
pub fn verify_multiselect<T: Record>(
    input: &EmFile<T>,
    ranks: &[u64],
    answers: &[T],
) -> Result<bool> {
    assert_eq!(ranks.len(), answers.len());
    let mut less = vec![0u64; answers.len()];
    let mut leq = vec![0u64; answers.len()];
    input.ctx().oracle(|| -> Result<()> {
        let mut r = input.reader()?;
        while let Some(x) = r.next()? {
            for (i, a) in answers.iter().enumerate() {
                match x.key().cmp(&a.key()) {
                    std::cmp::Ordering::Less => {
                        less[i] += 1;
                        leq[i] += 1;
                    }
                    std::cmp::Ordering::Equal => leq[i] += 1,
                    std::cmp::Ordering::Greater => {}
                }
            }
        }
        Ok(())
    })?;
    Ok(ranks
        .iter()
        .enumerate()
        .all(|(i, &rk)| less[i] < rk && leq[i] >= rk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn ctx() -> EmContext {
        EmContext::new_in_memory(EmConfig::tiny())
    }

    #[test]
    fn splitter_report_ok() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &(0..100u64).collect::<Vec<_>>()).unwrap();
        let spec = ProblemSpec::new(100, 4, 20, 30).unwrap();
        let rep = verify_splitters(&f, &[24u64, 49, 74], &spec).unwrap();
        assert!(rep.ok);
        assert_eq!(rep.sizes, vec![25, 25, 25, 25]);
    }

    #[test]
    fn splitter_report_violation() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &(0..100u64).collect::<Vec<_>>()).unwrap();
        let spec = ProblemSpec::new(100, 4, 20, 30).unwrap();
        let rep = verify_splitters(&f, &[9u64, 49, 74], &spec).unwrap();
        assert!(!rep.ok);
        assert_eq!(rep.sizes[0], 10);
        assert!(rep.violations.contains(&0));
        assert!(rep.violations.contains(&1));
    }

    #[test]
    fn splitter_count_mismatch_fails() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &(0..100u64).collect::<Vec<_>>()).unwrap();
        let spec = ProblemSpec::new(100, 4, 0, 100).unwrap();
        let rep = verify_splitters(&f, &[49u64], &spec).unwrap();
        assert!(!rep.ok); // 2 partitions, spec wants 4
    }

    #[test]
    fn partition_report_ok() {
        let c = ctx();
        let spec = ProblemSpec::new(9, 3, 3, 3).unwrap();
        let parts = vec![
            Partition::from_file(EmFile::from_slice(&c, &[2u64, 0, 1]).unwrap()),
            Partition::from_file(EmFile::from_slice(&c, &[5u64, 3, 4]).unwrap()),
            Partition::from_file(EmFile::from_slice(&c, &[8u64, 6, 7]).unwrap()),
        ];
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(rep.ok);
    }

    #[test]
    fn partition_order_violation_detected() {
        let c = ctx();
        let spec = ProblemSpec::new(6, 2, 3, 3).unwrap();
        let parts = vec![
            Partition::from_file(EmFile::from_slice(&c, &[0u64, 1, 5]).unwrap()),
            Partition::from_file(EmFile::from_slice(&c, &[2u64, 3, 4]).unwrap()),
        ];
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(!rep.ok);
        assert_eq!(rep.order_violations, vec![0]);
    }

    #[test]
    fn partition_size_violation_detected() {
        let c = ctx();
        let spec = ProblemSpec::new(6, 2, 3, 3).unwrap();
        let parts = vec![
            Partition::from_file(EmFile::from_slice(&c, &[0u64, 1]).unwrap()),
            Partition::from_file(EmFile::from_slice(&c, &[2u64, 3, 4, 5]).unwrap()),
        ];
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(!rep.ok);
        assert_eq!(rep.size_violations, vec![0, 1]);
        assert!(rep.total_matches);
    }

    #[test]
    fn partition_duplicates_straddling_ok() {
        let c = ctx();
        let spec = ProblemSpec::new(6, 2, 3, 3).unwrap();
        let parts = vec![
            Partition::from_file(EmFile::from_slice(&c, &[1u64, 2, 2]).unwrap()),
            Partition::from_file(EmFile::from_slice(&c, &[2u64, 3, 4]).unwrap()),
        ];
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(rep.ok, "≤ semantics admits ties at the boundary");
    }

    #[test]
    fn multiselect_verifier() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[5u64, 3, 1, 4, 2]).unwrap();
        assert!(verify_multiselect(&f, &[1, 3, 5], &[1u64, 3, 5]).unwrap());
        assert!(!verify_multiselect(&f, &[1, 3], &[1u64, 4]).unwrap());
    }

    #[test]
    fn multiselect_verifier_duplicates() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &[2u64, 2, 2, 1]).unwrap();
        assert!(verify_multiselect(&f, &[2, 4], &[2u64, 2]).unwrap());
        assert!(!verify_multiselect(&f, &[1], &[2u64]).unwrap());
    }
}
