//! The paper's lower-bound adversaries, executable (§2.1–2.2, §3).
//!
//! The proofs of Theorems 1–3 are adversary arguments: an algorithm that
//! has *seen* too few elements leaves the adversary free to fix the unseen
//! values so that the output is wrong. This module turns those arguments
//! into running code:
//!
//! * [`complete_right_grounded`] — given the elements an algorithm
//!   inspected and the splitters it returned, choose the unseen values to
//!   *starve* some induced partition (the §2.1 pigeonhole: among `K`
//!   partitions one holds at most `N₀/K` seen elements; route every unseen
//!   value elsewhere). Any procedure with `N₀ < aK` is broken; the paper's
//!   algorithm (which inspects `aK` elements) provably survives.
//! * [`complete_left_grounded`] — the §2.2 version: pack all `N − N₀`
//!   unseen values into one induced partition; any procedure with
//!   `N₀ < N − b` is broken.
//!
//! The tests drive deliberately *cheating* under-sampling algorithms into
//! these adversaries and check the verifier rejects them — and that the
//! real algorithms cannot be broken this way.

use emcore::Record;

/// Given the multiset of `seen` element values an algorithm inspected, the
/// `splitters` it returned (ascending), and the total input size `n`,
/// produce a full input (a permutation of `seen` plus `n − seen.len()`
/// adversarial values) on which the induced partition sizes are as small
/// as the adversary can force — the §2.1 argument.
///
/// The returned vector has length `n`; the seen values appear unchanged.
pub fn complete_right_grounded(seen: &[u64], splitters: &[u64], n: u64) -> Vec<u64> {
    assert!(seen.len() as u64 <= n);
    // Count seen elements per induced partition.
    let k = splitters.len() + 1;
    let mut counts = vec![0u64; k];
    for &x in seen {
        counts[splitters.partition_point(|&s| s < x)] += 1;
    }
    // The starved partition: fewest seen elements.
    let victim = counts
        .iter()
        .enumerate()
        .min_by_key(|&(_, &c)| c)
        .map(|(i, _)| i)
        .expect("k ≥ 1");
    // A value guaranteed OUTSIDE partition `victim` = (s_{v-1}, s_v]:
    // anything > s_v works for v < k−1... use s_v + 1 territory; for the
    // last partition use a value ≤ s_{k-2} (or anything < min splitter).
    let filler = if victim < splitters.len() {
        // victim has an upper splitter s_v: values above it are outside.
        splitters[victim].saturating_add(1)
    } else {
        // victim is the last partition: values at/below the first splitter
        // are outside it.
        splitters.first().copied().unwrap_or(0)
    };
    let mut out = Vec::with_capacity(n as usize);
    out.extend_from_slice(seen);
    out.resize(n as usize, filler);
    out
}

/// The §2.2 adversary for the left-grounded problem: pack every unseen
/// value into a single induced partition (the widest is most dramatic, but
/// any works) so its size exceeds `b` whenever `n − seen.len() > b`.
pub fn complete_left_grounded(seen: &[u64], splitters: &[u64], n: u64) -> Vec<u64> {
    assert!(seen.len() as u64 <= n);
    // Target the last partition (s_{k-1}, ∞): values above the top
    // splitter land there.
    let filler = splitters
        .last()
        .map(|&s| s.saturating_add(1))
        .unwrap_or(u64::MAX);
    let mut out = Vec::with_capacity(n as usize);
    out.extend_from_slice(seen);
    out.resize(n as usize, filler);
    out
}

/// A deliberately broken splitter-finder: inspects only the first
/// `sample_size` elements and returns their `1/K`-quantile. With
/// `sample_size < aK` it violates the Theorem-1 information requirement,
/// and [`complete_right_grounded`] will defeat it.
pub fn cheating_right_grounded<T: Record<Key = u64>>(prefix: &[T], k: u64) -> Vec<u64> {
    let mut keys: Vec<u64> = prefix.iter().map(|r| r.key()).collect();
    keys.sort_unstable();
    (1..k)
        .map(|i| {
            let rank = ((i as usize * keys.len()) / k as usize).max(1);
            keys[rank - 1]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ProblemSpec;
    use crate::splitters::approx_splitters;
    use crate::verify::verify_splitters;
    use emcore::{EmConfig, EmContext, EmFile};

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (1..=n).map(|i| i * 10).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn adversary_defeats_undersampling() {
        // A cheater that inspects aK/2 elements when Theorem 1 demands aK.
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let n = 4000u64;
        let (k, a) = (8u64, 64u64);
        let spec = ProblemSpec::new(n, k, a, n).unwrap();
        let data = shuffled(n, 1);

        let seen = &data[..(a * k / 2) as usize];
        let mut cheat = cheating_right_grounded(seen, k);
        cheat.sort_unstable();

        let adversarial = complete_right_grounded(seen, &cheat, n);
        assert_eq!(adversarial.len(), n as usize);
        let file = EmFile::from_slice(&ctx, &adversarial).unwrap();
        let rep = verify_splitters(&file, &cheat, &spec).unwrap();
        assert!(
            !rep.ok,
            "the adversary must defeat an undersampling cheater; sizes {:?}",
            rep.sizes
        );
        assert!(rep.sizes.iter().any(|&s| s < a));
    }

    #[test]
    fn real_algorithm_survives_the_same_adversary() {
        // The paper's algorithm inspects exactly aK elements; by the §5.1
        // argument every partition keeps ≥ a *seen* elements, so no unseen
        // completion can starve one.
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let n = 4000u64;
        let (k, a) = (8u64, 64u64);
        let spec = ProblemSpec::new(n, k, a, n).unwrap();
        let data = shuffled(n, 2);
        let file = ctx
            .stats()
            .paused(|| EmFile::from_slice(&ctx, &data))
            .unwrap();
        let splitters = approx_splitters(&file, &spec).unwrap();
        let keys: Vec<u64> = splitters.clone();

        // The algorithm read only the aK-prefix; hand the adversary exactly
        // that knowledge and let it recomplete the rest.
        let seen = &data[..(a * k) as usize];
        let adversarial = complete_right_grounded(seen, &keys, n);
        let file2 = EmFile::from_slice(&ctx, &adversarial).unwrap();
        let rep = verify_splitters(&file2, &keys, &spec).unwrap();
        assert!(
            rep.ok,
            "the real algorithm must survive adversarial completion; sizes {:?}",
            rep.sizes
        );
    }

    #[test]
    fn left_grounded_adversary_overfills() {
        let ctx = EmContext::new_in_memory(EmConfig::tiny());
        let n = 4000u64;
        let (k, b) = (8u64, 1000u64);
        let spec = ProblemSpec::new(n, k, 0, b).unwrap();
        let data = shuffled(n, 3);

        // A cheater that only reads n/4 < n − b elements.
        let seen = &data[..(n / 4) as usize];
        let mut cheat = cheating_right_grounded(seen, k);
        cheat.sort_unstable();

        let adversarial = complete_left_grounded(seen, &cheat, n);
        let file = EmFile::from_slice(&ctx, &adversarial).unwrap();
        let rep = verify_splitters(&file, &cheat, &spec).unwrap();
        assert!(
            !rep.ok,
            "packing n − n/4 > b unseen values into one partition must break b"
        );
        assert!(rep.sizes.iter().any(|&s| s > b));
    }

    #[test]
    fn completion_preserves_seen_values() {
        let seen = vec![5u64, 1, 9];
        let full = complete_right_grounded(&seen, &[4, 8], 10);
        assert_eq!(&full[..3], &[5, 1, 9]);
        assert_eq!(full.len(), 10);
    }
}
