//! Approximate K-splitters (paper §5.1, Theorem 5).
//!
//! Find `K − 1` elements `s_1 ≤ … ≤ s_{K-1}` of `S` such that every induced
//! partition `S ∩ (s_{i-1}, s_i]` has size in `[a, b]`.
//!
//! * **Right-grounded** (`b ≥ N`): take `aK` arbitrary elements `S'` and
//!   return the `1/K`-quantile of `S'` — `O((1 + aK/B)·lg_{M/B}(K/B))`
//!   I/Os, *sublinear* when `aK ≪ N`.
//! * **Left-grounded** (`a = 0`): multi-select the ranks `i·b` for
//!   `i < ⌈N/b⌉`, pad with arbitrary further elements if fewer than
//!   `K − 1` — `O((N/B)·lg_{M/B}(N/(bB)))` I/Os.
//! * **Two-sided**: if `a ≥ N/2K` or `b ≤ 2N/K` the plain `1/K`-quantile
//!   works; otherwise split `S` into the `aK'` smallest (`S_low`, quantiled
//!   into `K'` parts of exactly `a`) and the rest (`S_high`, quantiled into
//!   `K − K'` near-even parts), with `K' = ⌊(bK − N)/(b − a)⌋`.
//!
//! Duplicate keys: splitters are *elements* of `S`; with heavily duplicated
//! keys two splitters may carry equal keys, making some induced partitions
//! empty — legal only when `a = 0`. For `a ≥ 1` on duplicate-heavy inputs,
//! wrap records in [`emcore::Indexed`] to make keys distinct.

use emcore::{EmError, EmFile, Record, Result};
use emselect::{multi_select_segs, multi_select_with, split_at_rank, MsOptions, Partition};

use crate::spec::{Groundedness, ProblemSpec};

/// Options threaded through to the selection machinery.
pub type SplitOptions = MsOptions;

/// Find approximate K-splitters for `spec` on `input`. Dispatches on the
/// spec's groundedness. Returns the `K − 1` splitters in ascending key
/// order.
pub fn approx_splitters<T: Record>(input: &EmFile<T>, spec: &ProblemSpec) -> Result<Vec<T>> {
    approx_splitters_with(input, spec, SplitOptions::default())
}

/// [`approx_splitters`] with explicit selection options.
pub fn approx_splitters_with<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: SplitOptions,
) -> Result<Vec<T>> {
    check_input(input, spec)?;
    if spec.k == 1 {
        return Ok(Vec::new());
    }
    let stats = input.ctx().stats().clone();
    let phase = stats.phase_guard("approx-splitters");
    let r = match spec.groundedness() {
        Groundedness::RightGrounded => right_grounded(input, spec, opts),
        Groundedness::LeftGrounded => left_grounded(input, spec, opts),
        Groundedness::TwoSided => two_sided(input, spec, opts),
    };
    drop(phase);
    let mut splitters = r?;
    splitters.sort_unstable_by_key(|a| a.key());
    debug_assert_eq!(splitters.len(), (spec.k - 1) as usize);
    Ok(splitters)
}

pub(crate) fn check_input<T: Record>(input: &EmFile<T>, spec: &ProblemSpec) -> Result<()> {
    if input.len() != spec.n {
        return Err(EmError::config(format!(
            "spec says N = {} but input has {} records",
            spec.n,
            input.len()
        )));
    }
    Ok(())
}

/// Copy the first `count` records of `input` into a fresh file
/// (`O(1 + count/B)` reads + writes). The paper's "take `aK` arbitrary
/// elements".
fn take_prefix<T: Record>(input: &EmFile<T>, count: u64) -> Result<EmFile<T>> {
    let ctx = input.ctx().clone();
    let mut w = ctx.writer::<T>()?;
    let mut r = input.reader()?;
    let mut taken = 0u64;
    while taken < count {
        match r.next()? {
            Some(x) => {
                w.push(x)?;
                taken += 1;
            }
            None => {
                return Err(EmError::config(format!(
                    "prefix of {count} requested from file of {} records",
                    input.len()
                )))
            }
        }
    }
    w.finish()
}

/// Right-grounded: `b ≥ N`. Sublinear in `N` whenever `aK = o(N)`.
fn right_grounded<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: SplitOptions,
) -> Result<Vec<T>> {
    // a = 0 still needs K−1 distinct elements; sample with an effective
    // a of 1 (partitions only need to be nonempty below, i.e. ≥ a = 0,
    // which any K−1 splitters satisfy).
    let a = spec.a.max(1);
    let sample = take_prefix(input, a * spec.k)?;
    let ranks: Vec<u64> = (1..spec.k).map(|i| i * a).collect();
    multi_select_with(&sample, &ranks, opts)
}

/// Left-grounded: `a = 0`.
fn left_grounded<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: SplitOptions,
) -> Result<Vec<T>> {
    let n = spec.n;
    let b = spec.b;
    let k_needed = (spec.k - 1) as usize;
    let kp = n.div_ceil(b); // K' = ⌈N/b⌉ partitions of size ≤ b
    let core_ranks: Vec<u64> = (1..kp).map(|i| i * b).collect();
    let mut splitters = multi_select_with(input, &core_ranks, opts)?;
    if splitters.len() < k_needed {
        // Pad with "arbitrary distinct elements of S" (paper §5.1): scan
        // from the front collecting keys distinct from the core splitters
        // and from each other. Adding splitters only refines partitions,
        // so every size stays ≤ b; since a = 0, any refinement is legal.
        // Typical cost: O(1 + K/B) reads.
        let missing = k_needed - splitters.len();
        let taken: std::collections::BTreeSet<T::Key> = splitters.iter().map(|s| s.key()).collect();
        let _charge = input.ctx().mem().try_charge(
            (taken.len() + missing) * (T::WORDS + 1),
            "splitter padding set",
        )?;
        let mut pads: Vec<T> = Vec::with_capacity(missing);
        let mut pad_keys = std::collections::BTreeSet::new();
        let mut r = input.reader()?;
        while pads.len() < missing {
            match r.next()? {
                Some(x) => {
                    let key = x.key();
                    if !taken.contains(&key) && pad_keys.insert(key) {
                        pads.push(x);
                    }
                }
                None => {
                    return Err(EmError::config(format!(
                        "input has fewer than {} distinct keys; the K-splitters \
                         instance is infeasible",
                        k_needed + 1
                    )))
                }
            }
        }
        splitters.extend(pads);
    }
    Ok(splitters)
}

/// Two-sided: `0 < a ≤ N/K ≤ b < N`.
fn two_sided<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: SplitOptions,
) -> Result<Vec<T>> {
    if spec.quantile_suffices() {
        return multi_select_with(input, &spec.quantile_ranks(), opts);
    }
    let k = spec.k;
    let kp = spec.k_prime();
    if kp == 0 || kp >= k {
        // Degenerate corner (tiny K): the quantile is always feasible.
        return multi_select_with(input, &spec.quantile_ranks(), opts);
    }
    // For K within one base case, the whole splitter set is expressible as
    // K − 1 *global* ranks (the S_low quantiles are the ranks i·a, the
    // S_high quantiles the ranks aK' + i·|S_high|/(K−K')) — one
    // multi-selection call, no physical split. The explicit S_low/S_high
    // split is kept for large K, where selecting the K'−1 low splitters
    // from the aK'-element S_low (instead of all of S) is what achieves
    // the (aK/B)·lg_{M/B}(K/B) term.
    let kh = k - kp;
    let high_n = spec.n - spec.a * kp;
    let m = emselect::base_case_capacity(input, &opts);
    if ((k - 1) as usize) <= 2 * m || spec.a * k * 8 > spec.n {
        let mut ranks: Vec<u64> = (1..=kp).map(|i| i * spec.a).collect();
        ranks.extend((1..kh).map(|i| spec.a * kp + (i * high_n) / kh));
        return multi_select_with(input, &ranks, opts);
    }
    let (low, high, boundary) = split_lowest(input, spec.a * kp)?;
    debug_assert_eq!(low.len(), spec.a * kp);
    debug_assert_eq!(high.len(), high_n);
    debug_assert!(
        high_n >= spec.a * kh && high_n <= spec.b * kh,
        "|S_high| = {high_n} outside [a(K-K'), b(K-K')] = [{}, {}]",
        spec.a * kh,
        spec.b * kh
    );

    let ctx = input.ctx().clone();
    let mut out = Vec::with_capacity((k - 1) as usize);
    // s_1..s_{K'-1}: the 1/K'-quantile of S_low → partitions of exactly a.
    if kp > 1 {
        let ranks: Vec<u64> = (1..kp).map(|i| i * spec.a).collect();
        out.extend(multi_select_segs(&ctx, low.segments(), &ranks, opts)?);
    }
    // s_{K'}: the largest element of S_low = the rank-aK' element of S.
    out.push(boundary);
    // s_{K'+1}..s_{K-1}: the 1/(K-K')-quantile of S_high.
    if kh > 1 {
        let ranks: Vec<u64> = (1..kh).map(|i| (i * high_n) / kh).collect();
        out.extend(multi_select_segs(&ctx, high.segments(), &ranks, opts)?);
    }
    Ok(out)
}

/// Split `input` into (`count` smallest records, the rest, the maximum
/// record of the low side) in `O(N/B)` I/Os via
/// [`emselect::split_at_rank`] (adoption-based: roughly one sampling pass
/// plus one distribution pass). Exact under duplicate keys.
pub(crate) fn split_lowest<T: Record>(
    input: &EmFile<T>,
    count: u64,
) -> Result<(Partition<T>, Partition<T>, T)> {
    split_at_rank(input, count)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_splitters;
    use emcore::{EmConfig, EmContext};

    fn strict_ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn check(n: u64, k: u64, a: u64, b: u64, seed: u64) {
        let c = strict_ctx();
        let spec = ProblemSpec::new(n, k, a, b).unwrap();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, seed)))
            .unwrap();
        let sp = approx_splitters(&f, &spec).unwrap();
        assert_eq!(sp.len(), (k - 1) as usize);
        let report = verify_splitters(&f, &sp, &spec).unwrap();
        assert!(report.ok, "sizes {:?} violate {spec}", report.sizes);
    }

    #[test]
    fn right_grounded_small_a() {
        check(5000, 8, 2, 5000, 1);
        check(5000, 8, 100, 5000, 2);
    }

    #[test]
    fn right_grounded_max_a() {
        check(4000, 8, 500, 4000, 3); // a = N/K
    }

    #[test]
    fn right_grounded_a_zero() {
        check(3000, 5, 0, 3000, 4);
    }

    #[test]
    fn left_grounded_various_b() {
        check(4000, 8, 0, 500, 5); // b = N/K
        check(4000, 8, 0, 1000, 6);
        check(4000, 8, 0, 2000, 7); // b = N/2: K' = 2, heavy padding
    }

    #[test]
    fn left_grounded_padding_needed() {
        // K = 16 but ⌈N/b⌉ = 4: 12 padded splitters
        check(4000, 16, 0, 1000, 8);
    }

    #[test]
    fn two_sided_easy_quantile() {
        check(4000, 8, 400, 700, 9); // a ≥ N/2K
        check(4000, 8, 1, 600, 10); // b ≤ 2N/K
    }

    #[test]
    fn two_sided_hard_case() {
        check(4000, 8, 2, 3000, 11);
        check(4000, 8, 10, 2500, 12);
        check(8000, 16, 3, 3900, 13);
    }

    #[test]
    fn k_equals_one_no_splitters() {
        let c = strict_ctx();
        let spec = ProblemSpec::new(100, 1, 0, 100).unwrap();
        let f = EmFile::from_slice(&c, &shuffled(100, 14)).unwrap();
        assert!(approx_splitters(&f, &spec).unwrap().is_empty());
    }

    #[test]
    fn wrong_input_length_rejected() {
        let c = strict_ctx();
        let spec = ProblemSpec::new(100, 4, 0, 100).unwrap();
        let f = EmFile::from_slice(&c, &shuffled(50, 15)).unwrap();
        assert!(approx_splitters(&f, &spec).is_err());
    }

    #[test]
    fn right_grounded_is_sublinear() {
        // The headline phenomenon of Theorem 1/5: for small a the cost is
        // far below a full scan of N.
        let c = EmContext::new_in_memory(EmConfig::medium()); // B = 64
        let n = 500_000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 16)))
            .unwrap();
        let spec = ProblemSpec::new(n, 16, 4, n).unwrap();
        let before = c.stats().snapshot();
        let sp = approx_splitters(&f, &spec).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let full_scan = n.div_ceil(64);
        assert!(
            ios < full_scan / 10,
            "right-grounded splitters took {ios} I/Os; full scan is {full_scan}"
        );
        let report = c
            .stats()
            .paused(|| verify_splitters(&f, &sp, &spec))
            .unwrap();
        assert!(report.ok, "sizes {:?}", report.sizes);
    }

    #[test]
    fn split_lowest_exact_with_duplicates() {
        let c = strict_ctx();
        let data: Vec<u64> = vec![5, 5, 5, 5, 1, 9, 5, 5];
        let f = EmFile::from_slice(&c, &data).unwrap();
        let (low, high, boundary) = split_lowest(&f, 4).unwrap();
        assert_eq!(low.len(), 4);
        assert_eq!(high.len(), 4);
        assert_eq!(boundary, 5);
        let lv = low.to_vec().unwrap();
        assert!(lv.iter().all(|&x| x <= 5));
        assert!(lv.contains(&1));
    }

    #[test]
    fn two_sided_with_duplicate_keys_indexed() {
        // Heavy duplicates break value-distinct splitters; Indexed fixes it.
        use emcore::Indexed;
        let c = strict_ctx();
        let n = 3000u64;
        let data: Vec<Indexed<u64>> = (0..n).map(|i| Indexed::new(i % 10, i)).collect();
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let spec = ProblemSpec::new(n, 6, 2, 2500).unwrap();
        let sp = approx_splitters(&f, &spec).unwrap();
        let report = verify_splitters(&f, &sp, &spec).unwrap();
        assert!(report.ok, "sizes {:?}", report.sizes);
    }
}
