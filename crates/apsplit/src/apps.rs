//! The paper's motivating applications (§1), packaged as APIs.
//!
//! * [`equi_depth_histogram`] — "the bucket boundaries of an equi-depth
//!   histogram of K buckets correspond to the output of the approximate
//!   K-splitters problem"; relaxing the depth makes it cheaper, sometimes
//!   sublinear.
//! * [`balanced_loads`] — "distributing S onto a number K of machines for
//!   parallel processing"; a roughly balanced distribution is cheaper than
//!   a perfectly balanced one.

use emcore::{EmError, EmFile, Record, Result};

use crate::partitioning::{approx_partitioning, Partitioning};
use crate::spec::ProblemSpec;
use crate::splitters::approx_splitters;

/// A (nearly) equi-depth histogram: `buckets[i]` covers keys in
/// `(boundaries[i-1], boundaries[i]]` and holds `counts[i]` records, with
/// every count in `[a, b]`.
#[derive(Debug, Clone)]
pub struct EquiDepthHistogram<K> {
    /// Upper key boundary of each bucket except the last (`K − 1` values).
    pub boundaries: Vec<K>,
    /// Records per bucket (`K` values).
    pub counts: Vec<u64>,
}

/// Build a nearly equi-depth histogram with `k` buckets whose depths may
/// deviate from `n/k` by the factor `slack ≥ 0`: depths are constrained to
/// `[⌊(n/k)/(1+slack)⌋, ⌈(n/k)·(1+slack)⌉]`. `slack = 0` is the exact
/// equi-depth histogram (the `1/K`-quantile); larger slack is cheaper.
///
/// The returned counts come from one verification scan (charged).
pub fn equi_depth_histogram<T: Record>(
    input: &EmFile<T>,
    k: u64,
    slack: f64,
) -> Result<EquiDepthHistogram<T::Key>> {
    if !(0.0..=1e6).contains(&slack) {
        return Err(EmError::config("slack must be a nonnegative factor"));
    }
    let n = input.len();
    let target = n as f64 / k as f64;
    let a = (target / (1.0 + slack)).floor() as u64;
    let b = ((target * (1.0 + slack)).ceil() as u64).min(n).max(1);
    let spec = ProblemSpec::new(n, k, a.min(n / k), b.max(n.div_ceil(k)))?;
    let splitters = approx_splitters(input, &spec)?;
    // Count bucket depths with one scan.
    let mut counts = vec![0u64; k as usize];
    let mut r = input.reader()?;
    while let Some(x) = r.next()? {
        let j = splitters.partition_point(|s| s.key() < x.key());
        counts[j] += 1;
    }
    Ok(EquiDepthHistogram {
        boundaries: splitters.iter().map(|s| s.key()).collect(),
        counts,
    })
}

/// Distribute `input` onto `k` "machines" such that machine loads stay
/// within `[⌊(n/k)/(1+slack)⌋, ⌈(n/k)·(1+slack)⌉]` records, preserving
/// order between machines (machine `i` holds smaller keys than machine
/// `i+1`). `slack = 0` is a perfectly balanced distribution.
pub fn balanced_loads<T: Record>(input: &EmFile<T>, k: u64, slack: f64) -> Result<Partitioning<T>> {
    let n = input.len();
    let target = n as f64 / k as f64;
    let a = ((target / (1.0 + slack)).floor() as u64).min(n / k);
    let b = (((target * (1.0 + slack)).ceil() as u64).max(n.div_ceil(k))).min(n);
    let spec = ProblemSpec::new(n, k, a, b)?;
    approx_partitioning(input, &spec)
}

/// The `k` largest records of `input` as a [`Partition`] (unordered
/// within), in `O(N/B)` I/Os via one exact rank split.
pub fn top_k<T: Record>(input: &EmFile<T>, k: u64) -> Result<emselect::Partition<T>> {
    let n = input.len();
    if k > n {
        return Err(EmError::config(format!("top-{k} of only {n} records")));
    }
    if k == 0 {
        return Ok(emselect::Partition::empty());
    }
    if k == n {
        let ctx = input.ctx().clone();
        let mut w = ctx.writer::<T>()?;
        emselect::stream_into(input, |x| w.push(x))?;
        return Ok(emselect::Partition::from_file(w.finish()?));
    }
    let (_low, high, _) = emselect::split_at_rank(input, n - k)?;
    Ok(high)
}

/// The `k` smallest records of `input` as a [`Partition`], in `O(N/B)`.
pub fn bottom_k<T: Record>(input: &EmFile<T>, k: u64) -> Result<emselect::Partition<T>> {
    let n = input.len();
    if k > n {
        return Err(EmError::config(format!("bottom-{k} of only {n} records")));
    }
    if k == 0 {
        return Ok(emselect::Partition::empty());
    }
    if k == n {
        let ctx = input.ctx().clone();
        let mut w = ctx.writer::<T>()?;
        emselect::stream_into(input, |x| w.push(x))?;
        return Ok(emselect::Partition::from_file(w.finish()?));
    }
    let (low, _high, _) = emselect::split_at_rank(input, k)?;
    Ok(low)
}

/// The median record (lower median for even `N`) in `O(N/B)` I/Os.
pub fn median<T: Record>(input: &EmFile<T>) -> Result<T> {
    let n = input.len();
    if n == 0 {
        return Err(EmError::config("median of an empty file"));
    }
    emselect::select_rank(input, n.div_ceil(2))
}

#[cfg(test)]
mod tests {
    use super::*;
    use emcore::{EmConfig, EmContext};

    fn ctx() -> EmContext {
        EmContext::new_in_memory(EmConfig::tiny())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn histogram_exact_depth() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &shuffled(1000, 60)).unwrap();
        let h = equi_depth_histogram(&f, 4, 0.0).unwrap();
        assert_eq!(h.counts, vec![250, 250, 250, 250]);
        assert_eq!(h.boundaries.len(), 3);
        assert!(h.boundaries.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn histogram_with_slack_within_bounds() {
        let c = ctx();
        let n = 2000u64;
        let f = EmFile::from_slice(&c, &shuffled(n, 61)).unwrap();
        let h = equi_depth_histogram(&f, 8, 0.5).unwrap();
        assert_eq!(h.counts.iter().sum::<u64>(), n);
        let lo = (250.0_f64 / 1.5).floor() as u64;
        let hi = (250.0_f64 * 1.5).ceil() as u64;
        for &cnt in &h.counts {
            assert!(cnt >= lo && cnt <= hi, "depth {cnt} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn balanced_loads_zero_slack_is_exact() {
        let c = ctx();
        let n = 1200u64;
        let f = EmFile::from_slice(&c, &shuffled(n, 62)).unwrap();
        let loads = balanced_loads(&f, 6, 0.0).unwrap();
        assert_eq!(loads.len(), 6);
        for l in &loads {
            assert_eq!(l.len(), 200);
        }
    }

    #[test]
    fn top_and_bottom_k() {
        let c = ctx();
        let n = 2000u64;
        let f = EmFile::from_slice(&c, &shuffled(n, 64)).unwrap();
        let top = top_k(&f, 10).unwrap();
        let mut tv = top.to_vec().unwrap();
        tv.sort_unstable();
        assert_eq!(tv, (1990..2000).collect::<Vec<u64>>());
        let bot = bottom_k(&f, 3).unwrap();
        let mut bv = bot.to_vec().unwrap();
        bv.sort_unstable();
        assert_eq!(bv, vec![0, 1, 2]);
        assert!(top_k(&f, 0).unwrap().is_empty());
        assert_eq!(top_k(&f, n).unwrap().len(), n);
        assert!(top_k(&f, n + 1).is_err());
    }

    #[test]
    fn median_selects_middle() {
        let c = ctx();
        let f = EmFile::from_slice(&c, &shuffled(1001, 65)).unwrap();
        assert_eq!(median(&f).unwrap(), 500);
        let g = EmFile::from_slice(&c, &shuffled(1000, 66)).unwrap();
        assert_eq!(median(&g).unwrap(), 499); // lower median
        let e = c.create_file::<u64>().unwrap();
        assert!(median(&e).is_err());
    }

    #[test]
    fn top_k_is_linear_io() {
        let c = EmContext::new_in_memory(EmConfig::medium());
        let n = 200_000u64;
        let data = shuffled(n, 67);
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let before = c.stats().snapshot();
        let top = top_k(&f, 100).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        assert_eq!(top.len(), 100);
        let scan = n.div_ceil(64);
        assert!(ios <= 5 * scan, "top-k took {ios} I/Os");
    }

    #[test]
    fn balanced_loads_slack_reduces_io() {
        let n = 60_000u64;
        let run = |slack: f64| -> u64 {
            let c = EmContext::new_in_memory(EmConfig::medium());
            let f = c
                .stats()
                .paused(|| EmFile::from_slice(&c, &shuffled(n, 63)))
                .unwrap();
            let before = c.stats().snapshot();
            let loads = balanced_loads(&f, 16, slack).unwrap();
            assert_eq!(loads.iter().map(|l| l.len()).sum::<u64>(), n);
            c.stats().snapshot().since(&before).total_ios()
        };
        let exact = run(0.0);
        let loose = run(0.9);
        assert!(
            loose <= exact,
            "slack should not cost more: exact {exact}, loose {loose}"
        );
    }
}
