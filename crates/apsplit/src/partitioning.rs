//! Approximate K-partitioning (paper §5.2, Theorem 6).
//!
//! Physically divide `S` into `K` ordered partitions with sizes in
//! `[a, b]`, output as a list of files in order (the paper's linked list).
//!
//! * **Right-grounded** (`b ≥ N`): take the `a(K−1)` smallest elements,
//!   multi-partition them into `K − 1` parts of exactly `a`; the rest is
//!   `P_K` — `O(N/B + (aK/B)·lg_{M/B} min{K, aK/B})` I/Os.
//! * **Left-grounded** (`a = 0`): multi-partition into `⌈N/b⌉` parts of
//!   size `b` (last partial), pad with empty partitions —
//!   `O((N/B)·lg_{M/B} min{N/b, N/B})` I/Os.
//! * **Two-sided**: mirror of the two-sided splitters algorithm with
//!   multi-selection replaced by multi-partition.

use emcore::{EmFile, Record, Result};
use emselect::{multi_partition_segs, multi_partition_with, MpOptions, Partition};

use crate::spec::{Groundedness, ProblemSpec};
use crate::splitters::{check_input, split_lowest};

/// Options threaded through to the partitioning machinery.
pub type PartitionOptions = MpOptions;

/// The result of approximate K-partitioning: `K` ordered partitions,
/// each a segment list ([`Partition`]) — the paper's linked-list output.
pub type Partitioning<T> = Vec<Partition<T>>;

/// `k` sizes of `⌊n/k⌋` or `⌈n/k⌉`, via the quantile-rank differences.
fn near_even(n: u64, k: u64) -> Vec<u64> {
    let mut sizes = Vec::with_capacity(k as usize);
    let mut prev = 0u64;
    for i in 1..=k {
        let r = (i * n) / k;
        sizes.push(r - prev);
        prev = r;
    }
    sizes
}

/// The exact partition sizes [`approx_partitioning_with`] realises for
/// `spec`, independent of which physical strategy the dispatch picks.
/// Every size is in `[a, b]` (zeros only when `a = 0`). The recoverable
/// path ([`crate::recover`]) re-derives its binary split tree from these,
/// so they are the contract between the two implementations
/// (`sizes_match_target_sizes` in this module's tests enforces it).
pub(crate) fn target_sizes(spec: &ProblemSpec) -> Vec<u64> {
    match spec.groundedness() {
        Groundedness::RightGrounded => {
            let mut sizes = vec![spec.a; (spec.k - 1) as usize];
            sizes.push(spec.n - spec.a * (spec.k - 1));
            sizes
        }
        Groundedness::LeftGrounded => {
            let kp = spec.n.div_ceil(spec.b).max(1);
            let mut sizes = vec![spec.b; kp as usize];
            *sizes.last_mut().expect("kp ≥ 1") = spec.n - (kp - 1) * spec.b;
            sizes.resize(spec.k as usize, 0);
            sizes
        }
        Groundedness::TwoSided => {
            let k = spec.k;
            if spec.quantile_suffices() {
                return near_even(spec.n, k);
            }
            let kp = spec.k_prime();
            if kp == 0 || kp >= k {
                near_even(spec.n, k)
            } else {
                let mut sizes = vec![spec.a; kp as usize];
                sizes.extend(near_even(spec.n - spec.a * kp, k - kp));
                sizes
            }
        }
    }
}

/// Approximate K-partitioning of `input` under `spec`. Dispatches on the
/// spec's groundedness.
pub fn approx_partitioning<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
) -> Result<Partitioning<T>> {
    approx_partitioning_with(input, spec, PartitionOptions::default())
}

/// [`approx_partitioning`] with explicit options.
pub fn approx_partitioning_with<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: PartitionOptions,
) -> Result<Partitioning<T>> {
    check_input(input, spec)?;
    let stats = input.ctx().stats().clone();
    let phase = stats.phase_guard("approx-partitioning");
    let r = match spec.groundedness() {
        Groundedness::RightGrounded => right_grounded(input, spec, opts),
        Groundedness::LeftGrounded => left_grounded(input, spec, opts),
        Groundedness::TwoSided => two_sided(input, spec, opts),
    };
    drop(phase);
    let parts = r?;
    debug_assert_eq!(parts.len(), spec.k as usize);
    Ok(parts)
}

/// Right-grounded: `b ≥ N`. One multi-partition call with sizes
/// `[a, …, a, N − a(K−1)]`.
///
/// The paper phrases this as "take the `a(K−1)` smallest elements, then
/// multi-partition them"; with the pruned recursion + segment adoption of
/// [`multi_partition_with`] the direct call has exactly that cost profile:
/// buckets beyond rank `a(K−1)` contain no boundary and are adopted in
/// `O(1)`, so the work concentrates on the `aK`-prefix —
/// `O(N/B + (aK/B)·lg_{M/B} min{K, aK/B})`.
fn right_grounded<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: PartitionOptions,
) -> Result<Partitioning<T>> {
    let k = spec.k;
    let mut sizes = vec![spec.a; (k - 1) as usize];
    sizes.push(spec.n - spec.a * (k - 1));
    multi_partition_with(input, &sizes, opts)
}

/// Left-grounded: `a = 0`.
fn left_grounded<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: PartitionOptions,
) -> Result<Partitioning<T>> {
    let n = spec.n;
    let b = spec.b;
    let kp = n.div_ceil(b).max(1);
    let mut sizes = vec![b; kp as usize];
    *sizes.last_mut().expect("kp ≥ 1") = n - (kp - 1) * b;
    let mut parts = multi_partition_with(input, &sizes, opts)?;
    while parts.len() < spec.k as usize {
        parts.push(Partition::empty());
    }
    Ok(parts)
}

/// Two-sided: `0 < a ≤ N/K ≤ b < N`.
fn two_sided<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
    opts: PartitionOptions,
) -> Result<Partitioning<T>> {
    if spec.quantile_suffices() {
        return multi_partition_with(input, &near_even(spec.n, spec.k), opts);
    }
    let k = spec.k;
    let kp = spec.k_prime();
    if kp == 0 || kp >= k {
        return multi_partition_with(input, &near_even(spec.n, spec.k), opts);
    }
    // One combined multi-partition with sizes [a × K'] ++
    // near_even(N − aK', K − K') realises the same output as the paper's
    // S_low/S_high split without the extra rank-selection and routing
    // scans. The explicit split is kept only where it wins: many
    // partitions (K beyond a couple of distribution levels) *and* a
    // genuinely small low side (aK ≪ N), which is when the
    // (aK/B)·lg min{K, aK/B} term beats re-scanning everything.
    // Read the live budget: under a squeeze the two-sided cutoff shifts
    // toward the explicit-split path, bounding the recursion frontier.
    let f = emselect::max_distribution_fanout_now::<T>(input.ctx());
    if (k as usize) <= 2 * f || spec.a * k * 8 > spec.n {
        let kh = k - kp;
        let mut sizes = vec![spec.a; kp as usize];
        sizes.extend(near_even(spec.n - spec.a * kp, kh));
        return multi_partition_with(input, &sizes, opts);
    }
    let (low, high, _) = split_lowest(input, spec.a * kp)?;
    let kh = k - kp;
    let high_n = high.len();
    debug_assert!(high_n >= spec.a * kh && high_n <= spec.b * kh);
    let ctx = input.ctx().clone();
    let mut parts = multi_partition_segs(&ctx, low.segments(), &vec![spec.a; kp as usize], opts)?;
    parts.extend(multi_partition_segs(
        &ctx,
        high.segments(),
        &near_even(high_n, kh),
        opts,
    )?);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_partitioning;
    use emcore::{EmConfig, EmContext};

    fn strict_ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    fn check(n: u64, k: u64, a: u64, b: u64, seed: u64) {
        let c = strict_ctx();
        let spec = ProblemSpec::new(n, k, a, b).unwrap();
        let data = shuffled(n, seed);
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let parts = approx_partitioning(&f, &spec).unwrap();
        let report = c
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .unwrap();
        assert!(report.ok, "{spec}: {:?}", report);
        // multiset preservation
        let mut all: Vec<u64> = Vec::new();
        for p in &parts {
            all.extend(c.stats().paused(|| p.to_vec()).unwrap());
        }
        all.sort_unstable();
        let mut want = data;
        want.sort_unstable();
        assert_eq!(all, want);
    }

    #[test]
    fn right_grounded_cases() {
        check(4000, 8, 10, 4000, 21);
        check(4000, 8, 500, 4000, 22); // aK = N: exact partitioning
        check(4000, 8, 0, 4000, 23); // empty front partitions
    }

    #[test]
    fn left_grounded_cases() {
        check(4000, 8, 0, 500, 24); // b = N/K
        check(4000, 8, 0, 900, 25);
        check(4000, 8, 0, 4000, 26); // b = N → single real partition + empties... (right-grounded wins dispatch? a=0 → left)
    }

    #[test]
    fn two_sided_cases() {
        check(4000, 8, 450, 600, 27); // quantile easy case
        check(4000, 8, 2, 3000, 28); // hard case
        check(4000, 8, 10, 2500, 29);
        check(8000, 16, 3, 3900, 30);
    }

    #[test]
    fn exact_balanced_spec() {
        check(4096, 16, 256, 256, 31); // a = b = N/K
    }

    #[test]
    fn k_one_whole_input() {
        let c = strict_ctx();
        let spec = ProblemSpec::new(100, 1, 0, 100).unwrap();
        let f = EmFile::from_slice(&c, &shuffled(100, 32)).unwrap();
        let parts = approx_partitioning(&f, &spec).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0].len(), 100);
    }

    #[test]
    fn sizes_match_target_sizes() {
        // target_sizes is the contract the recoverable path builds on:
        // whatever strategy the dispatch picks must realise exactly these.
        for &(n, k, a, b, seed) in &[
            (4000, 8, 10, 4000, 41),  // right-grounded
            (4000, 8, 0, 900, 42),    // left-grounded (with empty padding)
            (4000, 8, 450, 600, 43),  // two-sided, quantile easy
            (4000, 8, 2, 3000, 44),   // two-sided, hard
            (8000, 16, 3, 3900, 45),  // two-sided, split-lowest regime
            (4096, 16, 256, 256, 46), // exact
            (100, 1, 0, 100, 47),     // K = 1
        ] {
            let c = strict_ctx();
            let spec = ProblemSpec::new(n, k, a, b).unwrap();
            let f = c
                .stats()
                .paused(|| EmFile::from_slice(&c, &shuffled(n, seed)))
                .unwrap();
            let parts = approx_partitioning(&f, &spec).unwrap();
            let got: Vec<u64> = parts.iter().map(|p| p.len()).collect();
            assert_eq!(got, target_sizes(&spec), "{spec}");
        }
    }

    #[test]
    fn right_grounded_cost_scales_with_ak_not_n() {
        // For small aK, only the split scan is linear; the partitioning of
        // S' is tiny. Compare against full sort-level work.
        let c = EmContext::new_in_memory(EmConfig::medium());
        let n = 200_000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 33)))
            .unwrap();
        let spec = ProblemSpec::new(n, 8, 16, n).unwrap();
        let before = c.stats().snapshot();
        let parts = approx_partitioning(&f, &spec).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let scan = n.div_ceil(64);
        assert!(
            ios <= 10 * scan,
            "right-grounded partitioning took {ios} I/Os = {:.1} scans",
            ios as f64 / scan as f64
        );
        let report = c
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .unwrap();
        assert!(report.ok);
    }
}
