//! Sort-based baselines.
//!
//! The paper's §1.2: every problem considered is "trivially solved by
//! sorting in `O((N/B)·lg_{M/B}(N/B))` I/Os". These are the comparison
//! lines for all experiments — the approximate algorithms must beat them,
//! with crossovers where the bounds predict.

use emcore::{EmError, EmFile, Record, Result};
use emselect::Partition;
use emsort::external_sort;

use crate::spec::ProblemSpec;
use crate::splitters::check_input;

/// Splitters by full sort: sort `S`, then read off the elements at the
/// near-even quantile ranks (always feasible for a feasible spec).
pub fn sort_based_splitters<T: Record>(input: &EmFile<T>, spec: &ProblemSpec) -> Result<Vec<T>> {
    check_input(input, spec)?;
    let stats = input.ctx().stats().clone();
    let _phase = stats.phase_guard("sort-baseline/splitters");
    let sorted = external_sort(input)?;
    let ranks = spec.quantile_ranks();
    let mut out = Vec::with_capacity(ranks.len());
    let mut next = 0usize;
    let mut pos = 0u64;
    let mut r = sorted.reader()?;
    while let Some(x) = r.next()? {
        pos += 1;
        while next < ranks.len() && ranks[next] == pos {
            out.push(x);
            next += 1;
        }
        if next == ranks.len() {
            break;
        }
    }
    Ok(out)
}

/// Partitioning by full sort: sort `S`, then cut the sorted stream into
/// near-even partitions.
pub fn sort_based_partitioning<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
) -> Result<Vec<Partition<T>>> {
    check_input(input, spec)?;
    let ctx = input.ctx().clone();
    let stats = ctx.stats().clone();
    let _phase = stats.phase_guard("sort-baseline/partitioning");
    let sorted = external_sort(input)?;
    let mut bounds = spec.quantile_ranks();
    bounds.push(spec.n);
    let mut parts = Vec::with_capacity(spec.k as usize);
    let mut r = sorted.reader()?;
    let mut pos = 0u64;
    for &bound in &bounds {
        let mut w = ctx.writer::<T>()?;
        while pos < bound {
            let x = r
                .next()?
                .ok_or_else(|| EmError::config("sorted file shorter than N"))?;
            w.push(x)?;
            pos += 1;
        }
        parts.push(Partition::from_file(w.finish()?));
    }
    Ok(parts)
}

/// Multi-selection by full sort: sort, then read off the given ranks
/// (ascending or not).
pub fn sort_based_multi_select<T: Record>(input: &EmFile<T>, ranks: &[u64]) -> Result<Vec<T>> {
    let stats = input.ctx().stats().clone();
    let _phase = stats.phase_guard("sort-baseline/multi-select");
    let sorted = external_sort(input)?;
    let mut order: Vec<usize> = (0..ranks.len()).collect();
    order.sort_unstable_by_key(|&i| ranks[i]);
    let mut out: Vec<Option<T>> = vec![None; ranks.len()];
    let mut r = sorted.reader()?;
    let mut pos = 0u64;
    let mut oi = 0usize;
    while oi < order.len() {
        let x = match r.next()? {
            Some(x) => x,
            None => break,
        };
        pos += 1;
        while oi < order.len() && ranks[order[oi]] == pos {
            out[order[oi]] = Some(x);
            oi += 1;
        }
    }
    out.into_iter()
        .map(|o| o.ok_or_else(|| EmError::config("rank exceeds N")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{verify_partitioning, verify_splitters};
    use emcore::{EmConfig, EmContext};

    fn ctx() -> EmContext {
        EmContext::new_in_memory_strict(EmConfig::tiny())
    }

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        let mut s = seed;
        for i in (1..v.len()).rev() {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (s >> 33) as usize % (i + 1);
            v.swap(i, j);
        }
        v
    }

    #[test]
    fn baseline_splitters_valid() {
        let c = ctx();
        let n = 3000u64;
        let spec = ProblemSpec::new(n, 6, 400, 600).unwrap();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 50)))
            .unwrap();
        let sp = sort_based_splitters(&f, &spec).unwrap();
        assert_eq!(sp.len(), 5);
        let rep = verify_splitters(&f, &sp, &spec).unwrap();
        assert!(rep.ok, "{:?}", rep.sizes);
    }

    #[test]
    fn baseline_partitioning_valid() {
        let c = ctx();
        let n = 3000u64;
        let spec = ProblemSpec::new(n, 6, 500, 500).unwrap();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 51)))
            .unwrap();
        let parts = sort_based_partitioning(&f, &spec).unwrap();
        let rep = verify_partitioning(&parts, &spec).unwrap();
        assert!(rep.ok);
        // baseline partitions are internally sorted too
        for p in &parts {
            assert!(emsort::is_sorted(&p.segments()[0]).unwrap());
        }
    }

    #[test]
    fn baseline_multiselect_matches() {
        let c = ctx();
        let n = 2000u64;
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 52)))
            .unwrap();
        let ranks = vec![1500, 3, 1999];
        let got = sort_based_multi_select(&f, &ranks).unwrap();
        assert_eq!(got, vec![1499, 2, 1998]);
    }

    #[test]
    fn baseline_costs_sort_level_io() {
        let c = EmContext::new_in_memory(EmConfig::medium());
        let n = 100_000u64;
        let spec = ProblemSpec::new(n, 4, 0, n).unwrap();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(n, 53)))
            .unwrap();
        let before = c.stats().snapshot();
        let _ = sort_based_splitters(&f, &spec).unwrap();
        let ios = c.stats().snapshot().since(&before).total_ios();
        let scan = n.div_ceil(64);
        // Sorting reads + writes every block at least twice at this size.
        assert!(ios >= 3 * scan, "baseline took only {ios} I/Os");
    }
}
