//! Crash-recoverable approximate K-partitioning.
//!
//! [`crate::approx_partitioning`] (paper §5.2, Theorem 6) builds its whole
//! output inside one recursion; a fatal fault unwinds everything. This
//! module realises the *same partition sizes* — the contract captured by
//! `partitioning::target_sizes` — through a binary split tree whose every
//! step is checkpointed to a durable [`emcore::Journal`] in a
//! [`PartitionManifest`], so a crash redoes at most one in-flight split.
//!
//! ## Work units
//!
//! Let `cum` be the cumulative target sizes. The root work node covers
//! partitions `0..K`; each unit splits a node's segment list at the
//! cumulative boundary nearest its middle partition (one
//! [`emselect::split_at_rank_segs`] call, `O(len/B)` expected I/Os), making
//! the tree `O(lg K)` levels of `O(N/B)` total work each. A node's input
//! segments are released only **after** both children's segment lists are
//! durable in the journal; a completed partition's segments stay persistent
//! until the whole partitioning finishes. Zero-size partitions (left-
//! grounded padding, `a = 0` fronts) are materialised as empty without
//! I/O.
//!
//! Journal commits charge [`emcore::Counters::journal_writes`]; redone work
//! after a crash is additionally counted in
//! [`emcore::Counters::redone_ios`].
//!
//! ## Example: crash and resume
//!
//! ```
//! use apsplit::{PartitionJob, PartitionManifest, ProblemSpec};
//! use emcore::{run_recoverable, EmConfig, EmContext, EmError, EmFile, FaultPlan};
//!
//! let ctx = EmContext::new_in_memory(EmConfig::tiny());
//! let data: Vec<u64> = (0..4000).rev().collect();
//! let input = EmFile::from_slice(&ctx, &data).unwrap();
//! let spec = ProblemSpec::new(4000, 8, 450, 600).unwrap();
//!
//! let plan = FaultPlan::new(0).fatal_at(400);
//! ctx.install_fault_plan(plan.clone());
//! let mut m = PartitionManifest::new(&input, &spec).unwrap();
//! assert!(matches!(
//!     run_recoverable(&ctx, &mut PartitionJob::new(&input, &mut m)),
//!     Err(EmError::Crashed)
//! ));
//! plan.clear_crash();
//! let parts = run_recoverable(&ctx, &mut PartitionJob::new(&input, &mut m)).unwrap();
//! assert_eq!(parts.len(), 8);
//! assert_eq!(parts.iter().map(|p| p.len()).sum::<u64>(), 4000);
//! ```

use emcore::{
    run_recoverable, Counters, EmContext, EmError, EmFile, Journal, JournalState, Record,
    RecoverableJob, Result,
};
use emselect::{split_at_rank_segs, Partition};

use crate::partitioning::{target_sizes, PartitionOptions, Partitioning};
use crate::spec::ProblemSpec;
use crate::splitters::check_input;

/// Name of the partitioning checkpoint journal within its backing store.
pub const PARTITION_JOURNAL: &str = "partition-manifest";

/// A pending node of the binary split tree: the records destined for
/// partitions `lo..=hi` (inclusive), physically held by `segs` — `None`
/// means the (borrowed, never released) root input.
#[derive(Debug)]
struct Node<T: Record> {
    lo: usize,
    hi: usize,
    segs: Option<Vec<EmFile<T>>>,
}

/// Segment lists as journaled: `(file id, record count)` pairs; `None`
/// marks the root (input-borrowing) node.
type SegIds = Option<Vec<(u64, u64)>>;

/// Serialised image of a [`PartitionManifest`] — what the journal stores.
#[derive(Debug, PartialEq, Eq)]
struct PartImage {
    input: (u64, u64),
    spec: (u64, u64, u64, u64),
    checkpoints: u64,
    /// Completed partitions: `(slot index, segment (id, len) pairs)`.
    slots: Vec<(usize, Vec<(u64, u64)>)>,
    /// Pending split-tree nodes, stack bottom first.
    nodes: Vec<(usize, usize, SegIds)>,
}

impl JournalState for PartImage {
    const KIND: &'static str = "partition-manifest";
    const VERSION: u32 = 1;

    fn encode(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = writeln!(out, "input {} {}", self.input.0, self.input.1);
        let (n, k, a, b) = self.spec;
        let _ = writeln!(out, "spec {n} {k} {a} {b}");
        let _ = writeln!(out, "checkpoints {}", self.checkpoints);
        for (i, segs) in &self.slots {
            let _ = write!(out, "slot {i}");
            for (id, len) in segs {
                let _ = write!(out, " {id} {len}");
            }
            let _ = writeln!(out);
        }
        for (lo, hi, segs) in &self.nodes {
            let _ = write!(out, "node {lo} {hi}");
            match segs {
                None => {
                    let _ = write!(out, " root");
                }
                Some(segs) => {
                    for (id, len) in segs {
                        let _ = write!(out, " {id} {len}");
                    }
                }
            }
            let _ = writeln!(out);
        }
    }

    fn decode(body: &str) -> Result<Self> {
        fn bad(line: &str) -> EmError {
            EmError::config(format!("partition journal: bad line {line:?}"))
        }
        fn pairs(toks: &[&str], line: &str) -> Result<Vec<(u64, u64)>> {
            if !toks.len().is_multiple_of(2) {
                return Err(bad(line));
            }
            let mut out = Vec::with_capacity(toks.len() / 2);
            for pair in toks.chunks(2) {
                out.push((
                    pair[0].parse().map_err(|_| bad(line))?,
                    pair[1].parse().map_err(|_| bad(line))?,
                ));
            }
            Ok(out)
        }
        let mut img = PartImage {
            input: (0, 0),
            spec: (0, 0, 0, 0),
            checkpoints: 0,
            slots: Vec::new(),
            nodes: Vec::new(),
        };
        for line in body.lines() {
            let (key, rest) = line.split_once(' ').ok_or_else(|| bad(line))?;
            let toks: Vec<&str> = rest.split(' ').collect();
            match key {
                "input" => {
                    if toks.len() != 2 {
                        return Err(bad(line));
                    }
                    img.input = (
                        toks[0].parse().map_err(|_| bad(line))?,
                        toks[1].parse().map_err(|_| bad(line))?,
                    );
                }
                "spec" => {
                    if toks.len() != 4 {
                        return Err(bad(line));
                    }
                    img.spec = (
                        toks[0].parse().map_err(|_| bad(line))?,
                        toks[1].parse().map_err(|_| bad(line))?,
                        toks[2].parse().map_err(|_| bad(line))?,
                        toks[3].parse().map_err(|_| bad(line))?,
                    );
                }
                "checkpoints" => img.checkpoints = rest.parse().map_err(|_| bad(line))?,
                "slot" => {
                    let idx: usize = toks[0].parse().map_err(|_| bad(line))?;
                    img.slots.push((idx, pairs(&toks[1..], line)?));
                }
                "node" => {
                    if toks.len() < 2 {
                        return Err(bad(line));
                    }
                    let lo: usize = toks[0].parse().map_err(|_| bad(line))?;
                    let hi: usize = toks[1].parse().map_err(|_| bad(line))?;
                    let segs = if toks.get(2) == Some(&"root") {
                        None
                    } else {
                        Some(pairs(&toks[2..], line)?)
                    };
                    img.nodes.push((lo, hi, segs));
                }
                _ => return Err(bad(line)),
            }
        }
        Ok(img)
    }
}

/// Checkpointed state of a recoverable approximate partitioning. Owns the
/// completed partitions and the pending split-tree nodes; survives any
/// number of failed [`resume_approx_partitioning`] attempts.
#[derive(Debug)]
pub struct PartitionManifest<T: Record> {
    ctx: EmContext,
    spec: ProblemSpec,
    opts: PartitionOptions,
    /// Input file identity `(id, len)`.
    input: (u64, u64),
    /// Cumulative target partition sizes (`cum[i]` = records in
    /// partitions `0..=i`).
    cum: Vec<u64>,
    /// Completed partitions by index.
    slots: Vec<Option<Partition<T>>>,
    /// Pending nodes, processed LIFO (leftmost-deepest first).
    work: Vec<Node<T>>,
    checkpoints: u64,
    done: bool,
    in_flight: Option<u64>,
    max_unit_ios: u64,
    journal: Journal,
}

impl<T: Record> PartitionManifest<T> {
    /// A fresh manifest for partitioning `input` under `spec` with default
    /// options.
    pub fn new(input: &EmFile<T>, spec: &ProblemSpec) -> Result<Self> {
        Self::new_with(input, spec, PartitionOptions::default())
    }

    /// [`PartitionManifest::new`] with explicit options (only the splitter
    /// strategy is consulted).
    pub fn new_with(input: &EmFile<T>, spec: &ProblemSpec, opts: PartitionOptions) -> Result<Self> {
        check_input(input, spec)?;
        let ctx = input.ctx().clone();
        let sizes = target_sizes(spec);
        let k = sizes.len();
        debug_assert_eq!(k, spec.k as usize);
        let mut cum = Vec::with_capacity(k);
        let mut acc = 0u64;
        for s in &sizes {
            acc += s;
            cum.push(acc);
        }
        debug_assert_eq!(acc, spec.n);
        let journal = Journal::new(&ctx, PARTITION_JOURNAL).expect("valid journal name");
        Ok(Self {
            spec: *spec,
            opts,
            input: (input.id(), input.len()),
            cum,
            slots: (0..k).map(|_| None).collect(),
            work: vec![Node {
                lo: 0,
                hi: k - 1,
                segs: None,
            }],
            checkpoints: 0,
            done: false,
            in_flight: None,
            max_unit_ios: 0,
            journal,
            ctx,
        })
    }

    /// Whether partitioning has completed and yielded its output.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Completed work units so far (each one a checkpoint).
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Largest I/O cost of any single completed work unit — the empirical
    /// bound on crash rework.
    pub fn max_unit_ios(&self) -> u64 {
        self.max_unit_ios
    }

    /// The problem spec this manifest was created for.
    pub fn spec(&self) -> &ProblemSpec {
        &self.spec
    }

    /// A human-readable snapshot of the manifest.
    pub fn describe(&self) -> String {
        let mut s = String::from("em-partition-manifest v1\n");
        self.image().encode(&mut s);
        s
    }

    fn image(&self) -> PartImage {
        let seg_ids = |p: &Partition<T>| -> Vec<(u64, u64)> {
            p.segments().iter().map(|s| (s.id(), s.len())).collect()
        };
        PartImage {
            input: self.input,
            spec: (self.spec.n, self.spec.k, self.spec.a, self.spec.b),
            checkpoints: self.checkpoints,
            slots: self
                .slots
                .iter()
                .enumerate()
                .filter_map(|(i, s)| s.as_ref().map(|p| (i, seg_ids(p))))
                .collect(),
            nodes: self
                .work
                .iter()
                .map(|n| {
                    (
                        n.lo,
                        n.hi,
                        n.segs
                            .as_ref()
                            .map(|v| v.iter().map(|s| (s.id(), s.len())).collect()),
                    )
                })
                .collect(),
        }
    }

    fn begin_unit(&mut self) -> (bool, Counters) {
        let redo = self.in_flight == Some(self.checkpoints);
        self.in_flight = Some(self.checkpoints);
        (redo, self.ctx.stats().snapshot())
    }

    fn end_unit(&mut self, redo: bool, before: Counters) {
        let spent = self.ctx.stats().snapshot().since(&before).total_ios();
        self.max_unit_ios = self.max_unit_ios.max(spent);
        if redo {
            self.ctx.stats().record_redone_ios(spent);
        }
    }

    fn checkpoint(&mut self) -> Result<()> {
        self.checkpoints += 1;
        self.journal.commit(&self.image())
    }
}

/// The checkpointed approximate partitioning as a [`RecoverableJob`]:
/// drive it with [`emcore::run_recoverable`]. Borrows the input and its
/// manifest for the duration of one resume attempt; build a fresh job
/// value per attempt.
#[derive(Debug)]
pub struct PartitionJob<'a, T: Record> {
    input: &'a EmFile<T>,
    manifest: &'a mut PartitionManifest<T>,
}

impl<'a, T: Record> PartitionJob<'a, T> {
    /// A job that partitions `input` per `manifest`'s problem spec.
    pub fn new(input: &'a EmFile<T>, manifest: &'a mut PartitionManifest<T>) -> Self {
        Self { input, manifest }
    }
}

impl<T: Record> RecoverableJob for PartitionJob<'_, T> {
    type Output = Partitioning<T>;

    fn kind(&self) -> &'static str {
        "resume_approx_partitioning"
    }

    fn journal_name(&self) -> &'static str {
        PARTITION_JOURNAL
    }

    fn is_done(&self) -> bool {
        self.manifest.done
    }

    fn check_input(&mut self) -> Result<()> {
        // Identity was bound at `PartitionManifest::new`; only verify.
        if self.manifest.input != (self.input.id(), self.input.len()) {
            return Err(EmError::config(format!(
                "resume_approx_partitioning: manifest belongs to input (id {}, len {}), \
                 got (id {}, len {})",
                self.manifest.input.0,
                self.manifest.input.1,
                self.input.id(),
                self.input.len()
            )));
        }
        Ok(())
    }

    fn drive(&mut self, ctx: &EmContext) -> Result<Partitioning<T>> {
        let phase = ctx.stats().phase_guard("approx-partitioning/recoverable");
        let r = resume_inner(self.input, self.manifest, ctx);
        drop(phase);
        r
    }
}

/// One-shot recoverable approximate partitioning with default options —
/// realises exactly the sizes of [`crate::approx_partitioning`], with
/// checkpointing overhead. Use [`PartitionManifest::new`] +
/// [`PartitionJob`] + [`emcore::run_recoverable`] directly to keep the
/// manifest across failures.
pub fn approx_partitioning_recoverable<T: Record>(
    input: &EmFile<T>,
    spec: &ProblemSpec,
) -> Result<Partitioning<T>> {
    let mut manifest = PartitionManifest::new(input, spec)?;
    let ctx = manifest.ctx.clone();
    run_recoverable(&ctx, &mut PartitionJob::new(input, &mut manifest))
}

/// Drive the partitioning of `input` forward from wherever `manifest` left
/// off, until completion or the next terminal error. Idempotent over
/// failures: only the interrupted split is redone on the next call.
#[deprecated(note = "use emcore::run_recoverable with apsplit::PartitionJob")]
pub fn resume_approx_partitioning<T: Record>(
    input: &EmFile<T>,
    manifest: &mut PartitionManifest<T>,
) -> Result<Partitioning<T>> {
    let ctx = manifest.ctx.clone();
    run_recoverable(&ctx, &mut PartitionJob::new(input, manifest))
}

fn resume_inner<T: Record>(
    input: &EmFile<T>,
    manifest: &mut PartitionManifest<T>,
    ctx: &EmContext,
) -> Result<Partitioning<T>> {
    let strategy = manifest.opts.strategy;
    while !manifest.work.is_empty() {
        let (redo, before) = manifest.begin_unit();
        let (lo, hi, is_root) = {
            let nd = manifest.work.last().expect("non-empty work stack");
            (nd.lo, nd.hi, nd.segs.is_none())
        };
        // Trace-only span per split-tree node: redo points land inside it.
        let _unit = ctx.stats().trace_span(|| format!("split/{lo}-{hi}"));
        let start = if lo == 0 { 0 } else { manifest.cum[lo - 1] };
        let node_len = manifest.cum[hi] - start;

        if node_len == 0 {
            // Every covered partition is empty; no I/O.
            manifest.work.pop();
            for s in lo..=hi {
                manifest.slots[s] = Some(Partition::empty());
            }
            manifest.checkpoint()?;
            manifest.end_unit(redo, before);
            continue;
        }

        if lo == hi {
            // Leaf: the node's records *are* partition `lo`.
            let part = if is_root {
                // K = 1 (or a degenerate spec): materialise a copy so the
                // output owns its storage, like the non-recoverable path.
                let mut w = ctx.writer::<T>()?;
                let mut r = input.reader()?;
                while let Some(x) = r.next()? {
                    w.push(x)?;
                }
                let f = w.finish()?;
                f.set_persistent(true);
                Partition::from_file(f)
            } else {
                let nd = manifest.work.last_mut().expect("non-empty work stack");
                Partition::from_segments(nd.segs.take().expect("non-root leaf"))
            };
            manifest.work.pop();
            manifest.slots[lo] = Some(part);
            // ---- checkpoint: partition `lo`'s segments are durable ----
            manifest.checkpoint()?;
            manifest.end_unit(redo, before);
            continue;
        }

        let mid = lo + (hi - lo) / 2;
        let cut = manifest.cum[mid] - start;

        if cut == 0 {
            // Partitions lo..=mid all have target size 0; no I/O.
            for s in lo..=mid {
                manifest.slots[s] = Some(Partition::empty());
            }
            manifest.work.last_mut().expect("non-empty").lo = mid + 1;
            manifest.checkpoint()?;
            manifest.end_unit(redo, before);
            continue;
        }
        if cut == node_len {
            // Partitions mid+1..=hi all have target size 0; no I/O.
            for s in mid + 1..=hi {
                manifest.slots[s] = Some(Partition::empty());
            }
            manifest.work.last_mut().expect("non-empty").hi = mid;
            manifest.checkpoint()?;
            manifest.end_unit(redo, before);
            continue;
        }

        // The real work unit: split this node's records at local rank
        // `cut` so partitions lo..=mid get the `cut` smallest.
        let (low, high) = {
            let nd = manifest.work.last().expect("non-empty work stack");
            let segs: &[EmFile<T>] = match &nd.segs {
                Some(v) => v,
                None => std::slice::from_ref(input),
            };
            let (low, high, _boundary) = split_at_rank_segs(ctx, segs, cut, strategy)?;
            (low, high)
        };
        for s in low.segments().iter().chain(high.segments()) {
            s.set_persistent(true);
        }
        let parent = manifest.work.pop().expect("non-empty work stack");
        manifest.work.push(Node {
            lo: mid + 1,
            hi,
            segs: Some(high.into_segments()),
        });
        manifest.work.push(Node {
            lo,
            hi: mid,
            segs: Some(low.into_segments()),
        });
        // ---- checkpoint: both children's segment lists are durable ----
        manifest.checkpoint()?;
        // Only now may the parent's (non-root) input segments be released.
        if let Some(segs) = parent.segs {
            for s in &segs {
                s.set_persistent(false);
            }
        }
        manifest.end_unit(redo, before);
    }

    let parts: Partitioning<T> = manifest
        .slots
        .iter_mut()
        .map(|s| s.take().expect("all slots filled"))
        .collect();
    // Ownership moves to the caller: restore delete-on-drop semantics.
    for p in &parts {
        for s in p.segments() {
            s.set_persistent(false);
        }
    }
    manifest.done = true;
    manifest.journal.remove()?;
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_partitioning;
    use emcore::{EmConfig, FaultPlan, SplitMix64};

    fn shuffled(n: u64, seed: u64) -> Vec<u64> {
        let mut v: Vec<u64> = (0..n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        v
    }

    /// The canonical resume idiom: drive the job via `run_recoverable`.
    /// (`resume_approx_partitioning` is only a deprecated shim over
    /// exactly this.)
    fn resume(f: &EmFile<u64>, m: &mut PartitionManifest<u64>) -> Result<Partitioning<u64>> {
        let c = f.ctx().clone();
        run_recoverable(&c, &mut PartitionJob::new(f, m))
    }

    fn flat(parts: &[Partition<u64>]) -> Vec<u64> {
        let mut all = Vec::new();
        for p in parts {
            all.extend(p.to_vec().unwrap());
        }
        all
    }

    fn check_recoverable(n: u64, k: u64, a: u64, b: u64, seed: u64) {
        let c = EmContext::new_in_memory_strict(EmConfig::tiny());
        let spec = ProblemSpec::new(n, k, a, b).unwrap();
        let data = shuffled(n, seed);
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let parts = approx_partitioning_recoverable(&f, &spec).unwrap();
        let report = c
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .unwrap();
        assert!(report.ok, "{spec}: {report:?}");
        let sizes: Vec<u64> = parts.iter().map(|p| p.len()).collect();
        assert_eq!(sizes, crate::partitioning::target_sizes(&spec), "{spec}");
        let mut all = c.stats().paused(|| flat(&parts));
        all.sort_unstable();
        let mut want = data;
        want.sort_unstable();
        assert_eq!(all, want, "{spec}");
    }

    #[test]
    fn fault_free_all_groundedness_classes() {
        check_recoverable(4000, 8, 10, 4000, 51); // right-grounded
        check_recoverable(4000, 8, 0, 4000, 52); // right, a = 0
        check_recoverable(4000, 8, 0, 900, 53); // left-grounded
        check_recoverable(4000, 8, 450, 600, 54); // two-sided easy
        check_recoverable(4000, 8, 2, 3000, 55); // two-sided hard
        check_recoverable(4096, 16, 256, 256, 56); // exact
        check_recoverable(100, 1, 0, 100, 57); // K = 1 root leaf
    }

    #[test]
    fn fault_free_charges_journal_writes_no_redone() {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let spec = ProblemSpec::new(3000, 8, 300, 500).unwrap();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(3000, 58)))
            .unwrap();
        let parts = approx_partitioning_recoverable(&f, &spec).unwrap();
        assert_eq!(parts.len(), 8);
        let stats = c.stats().snapshot();
        assert_eq!(stats.redone_ios, 0);
        assert!(stats.journal_writes > 0);
    }

    // Keeps the deprecated `resume_approx_partitioning` shim covered until
    // it is removed; every other test resumes via `run_recoverable`.
    #[test]
    #[allow(deprecated)]
    fn crash_and_resume_preserves_output_and_bounds_rework() {
        let n = 5000u64;
        let spec = ProblemSpec::new(n, 8, 100, 3000).unwrap();
        let data = shuffled(n, 59);
        // Fault-free reference output.
        let want = {
            let c = EmContext::new_in_memory(EmConfig::tiny());
            let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
            let parts = approx_partitioning_recoverable(&f, &spec).unwrap();
            c.stats().paused(|| flat(&parts))
        };

        let c = EmContext::new_in_memory(EmConfig::tiny());
        let f = c.stats().paused(|| EmFile::from_slice(&c, &data)).unwrap();
        let plan = FaultPlan::new(0).fatal_at(300);
        c.install_fault_plan(plan.clone());
        let mut m = PartitionManifest::new(&f, &spec).unwrap();
        let mut crashes = 0;
        let parts = loop {
            match resume_approx_partitioning(&f, &mut m) {
                Ok(parts) => break parts,
                Err(EmError::Crashed) => {
                    crashes += 1;
                    assert!(crashes < 100);
                    plan.clear_crash();
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        };
        assert_eq!(crashes, 1);
        let got = c.stats().paused(|| flat(&parts));
        assert_eq!(got, want, "resumed output must equal fault-free output");
        let stats = c.stats().snapshot();
        assert!(stats.redone_ios > 0);
        assert!(
            stats.redone_ios <= m.max_unit_ios(),
            "rework {} vs unit bound {}",
            stats.redone_ios,
            m.max_unit_ios()
        );
    }

    #[test]
    fn completed_manifest_rejects_reuse_and_wrong_input() {
        let c = EmContext::new_in_memory(EmConfig::tiny());
        let spec = ProblemSpec::new(200, 4, 20, 100).unwrap();
        let f = EmFile::from_slice(&c, &shuffled(200, 60)).unwrap();
        let mut m = PartitionManifest::new(&f, &spec).unwrap();
        let _ = resume(&f, &mut m).unwrap();
        assert!(matches!(resume(&f, &mut m), Err(EmError::Config(_))));
        let g = EmFile::from_slice(&c, &[1u64, 2]).unwrap();
        let mut m2 = PartitionManifest::new(&f, &spec).unwrap();
        assert!(matches!(resume(&g, &mut m2), Err(EmError::Config(_))));
    }

    #[test]
    fn journal_cleaned_up_on_completion_disk() {
        let c = EmContext::new_on_disk_temp(EmConfig::tiny()).unwrap();
        let spec = ProblemSpec::new(4000, 8, 100, 3000).unwrap();
        let f = c
            .stats()
            .paused(|| EmFile::from_slice(&c, &shuffled(4000, 61)))
            .unwrap();
        let meta = c.backing_dir().unwrap().join("partition-manifest.journal");
        let plan = FaultPlan::new(0).fatal_at(600);
        c.install_fault_plan(plan.clone());
        let mut m = PartitionManifest::new(&f, &spec).unwrap();
        assert!(resume(&f, &mut m).is_err());
        assert_eq!(meta.exists(), m.checkpoints() > 0);
        plan.clear_crash();
        let parts = resume(&f, &mut m).unwrap();
        assert_eq!(parts.len(), 8);
        assert!(!meta.exists(), "journal removed after completion");
        let report = c
            .stats()
            .paused(|| verify_partitioning(&parts, &spec))
            .unwrap();
        assert!(report.ok);
    }

    #[test]
    fn image_roundtrips_through_journal_encoding() {
        let img = PartImage {
            input: (5, 4000),
            spec: (4000, 8, 100, 3000),
            checkpoints: 7,
            slots: vec![(0, vec![(9, 100), (10, 40)]), (3, vec![])],
            nodes: vec![(0, 7, None), (4, 7, Some(vec![(11, 2000)]))],
        };
        let mut body = String::new();
        img.encode(&mut body);
        assert_eq!(PartImage::decode(&body).unwrap(), img);
    }
}
