//! Regression tests for duplicate-heavy skewed key multisets.
//!
//! Graph workloads hand the partitioning machinery *degree multisets*:
//! power-law files where a handful of key values (degree 1, degree 2)
//! cover most of the input and a few hub keys are enormous outliers.
//! Ties then straddle partition boundaries by necessity, and these
//! tests pin down that the realized partition **sizes** still meet the
//! paper's `[a, b]` contract exactly — physical partitioning splits by
//! rank, not by key range, so duplicates must never push a size out of
//! bounds.

use apsplit::{approx_partitioning, balanced_loads, verify_partitioning, ProblemSpec};
use emcore::{EmConfig, EmContext, EmFile, KeyValue, SplitMix64};
use workloads::{degree_histogram, rmat_edges};

/// The degree multiset of a seeded R-MAT graph as bare `u64` keys —
/// maximally duplicate-heavy (every vertex of degree `d` contributes
/// another copy of `d`).
fn power_law_degrees(scale: u32, edges: u64, seed: u64) -> Vec<u64> {
    let hist = degree_histogram(&rmat_edges(scale, edges, seed));
    let mut keys = Vec::new();
    for (degree, count) in hist {
        keys.extend(std::iter::repeat_n(degree, count as usize));
    }
    // Present them unsorted, as a real pipeline would.
    SplitMix64::new(seed ^ 0x9e37).shuffle(&mut keys);
    keys
}

fn near_even_sizes(n: u64, k: u64) -> Vec<u64> {
    (1..=k).map(|i| i * n / k - (i - 1) * n / k).collect()
}

#[test]
fn near_even_partitioning_of_power_law_degree_multiset() {
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    let keys = power_law_degrees(9, 6_000, 11);
    let n = keys.len() as u64;
    let file = EmFile::from_slice(&ctx, &keys).unwrap();
    for k in [2u64, 7, 16] {
        let spec = ProblemSpec::near_even(n, k).unwrap();
        let parts = approx_partitioning(&file, &spec).unwrap();
        let report = verify_partitioning(&parts, &spec).unwrap();
        assert!(report.ok, "k={k}: {report:?}");
        // Near-even is quantile-sufficient: the realized sizes are the
        // exact ⌊i·N/K⌋ cuts, duplicates or not.
        assert_eq!(report.sizes, near_even_sizes(n, k), "k={k}");
    }
}

#[test]
fn single_value_majority_still_partitions_in_bounds() {
    // One key value covering > N/2 of the file: any key-range split is
    // infeasible, only rank splitting can respect [a, b].
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    let mut keys = vec![1u64; 700];
    keys.extend(0..300u64);
    SplitMix64::new(3).shuffle(&mut keys);
    let file = EmFile::from_slice(&ctx, &keys).unwrap();
    let spec = ProblemSpec::near_even(1000, 8).unwrap();
    let parts = approx_partitioning(&file, &spec).unwrap();
    let report = verify_partitioning(&parts, &spec).unwrap();
    assert!(report.ok, "{report:?}");
    assert_eq!(report.sizes, vec![125; 8]);
}

#[test]
fn two_sided_slack_spec_on_degree_multiset() {
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    let keys = power_law_degrees(8, 4_000, 5);
    let n = keys.len() as u64;
    let file = EmFile::from_slice(&ctx, &keys).unwrap();
    // The balanced-loads application: 10% slack around N/K.
    let k = 6u64;
    let parts = balanced_loads(&file, k, 0.10).unwrap();
    let target = n as f64 / k as f64;
    let a = (target / 1.10).floor() as u64;
    let b = (target * 1.10).ceil() as u64;
    assert_eq!(parts.len(), k as usize);
    let mut total = 0u64;
    for p in &parts {
        assert!(
            p.len() >= a && p.len() <= b,
            "size {} outside [{a}, {b}]",
            p.len()
        );
        total += p.len();
    }
    assert_eq!(total, n);
}

#[test]
fn right_grounded_spec_isolates_the_hub_tail() {
    // a small, b = N: the first K−1 partitions take exactly a of the
    // smallest degrees; the hub keys all land in the last partition.
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    let keys = power_law_degrees(8, 4_000, 7);
    let n = keys.len() as u64;
    let file = EmFile::from_slice(&ctx, &keys).unwrap();
    let (k, a) = (5u64, 16u64);
    let spec = ProblemSpec::new(n, k, a, n).unwrap();
    let parts = approx_partitioning(&file, &spec).unwrap();
    let report = verify_partitioning(&parts, &spec).unwrap();
    assert!(report.ok, "{report:?}");
    let mut want = vec![a; (k - 1) as usize];
    want.push(n - a * (k - 1));
    assert_eq!(report.sizes, want);
    // The global maximum degree is in the last partition.
    let max_key = keys.iter().copied().max().unwrap();
    let last: Vec<u64> = parts.last().unwrap().to_vec().unwrap();
    assert!(last.contains(&max_key));
}

#[test]
fn keyed_records_carry_vertices_through_ties() {
    // (degree, vertex) records: the partitioner splits tied degrees
    // across partitions, but every vertex must come out exactly once —
    // the contract emgraph's degree bucketing relies on.
    let ctx = EmContext::new_in_memory(EmConfig::tiny());
    let hist = degree_histogram(&rmat_edges(7, 2_000, 13));
    let mut records = Vec::new();
    let mut v = 0u64;
    for (degree, count) in hist {
        for _ in 0..count {
            records.push(KeyValue {
                key: degree,
                value: v,
            });
            v += 1;
        }
    }
    SplitMix64::new(99).shuffle(&mut records);
    let n = records.len() as u64;
    let file = EmFile::from_slice(&ctx, &records).unwrap();
    let spec = ProblemSpec::near_even(n, 4).unwrap();
    let parts = approx_partitioning(&file, &spec).unwrap();
    let report = verify_partitioning(&parts, &spec).unwrap();
    assert!(report.ok, "{report:?}");
    let mut seen: Vec<u64> = Vec::new();
    for p in &parts {
        for kv in p.to_vec().unwrap() {
            seen.push(kv.value);
        }
    }
    seen.sort_unstable();
    assert_eq!(seen, (0..n).collect::<Vec<u64>>());
}
